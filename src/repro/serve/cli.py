"""``repro-serve``: run the serving daemon from the command line.

Beyond argument plumbing, this module owns the process-lifetime concern
the library cannot: **signal-driven shutdown**.  The worker pool's
shared-memory arenas are unlinked by an ``atexit`` hook, but ``atexit``
only runs on normal interpreter exit — a SIGTERM (the way every container
runtime and init system stops a service) would previously kill the
process with the ``/dev/shm`` segments still linked, leaking them until
reboot.  The CLI installs SIGTERM/SIGINT handlers on the event loop that
(1) stop accepting connections, (2) drain every accepted request through
the micro-batcher, then (3) call the idempotent
:func:`repro.util.pool.shutdown_pool`, and finally exits 0.

Metrics are enabled by default here (unlike the library, where
observability is opt-in): a serving daemon without ``/metrics`` is blind.
Pass ``--no-metrics`` to run with the registry disabled.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.obs import get_registry
from repro.serve.daemon import ReproServeDaemon

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve adaptive reproducible reductions over HTTP with dynamic "
            "micro-batching (POST /v1/reduce, /v1/reduce_many, /v1/ensemble; "
            "GET /metrics, /healthz).  The reduce endpoints speak JSON and "
            "the zero-copy binary frame codec "
            "(Content-Type: application/x-repro-frame)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8077,
        help="listen port; 0 binds an ephemeral port (default: %(default)s)",
    )
    parser.add_argument(
        "--ranks", type=int, default=8,
        help="simulated communicator size global vectors scatter over "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for reduce_many/ensemble sharding "
        "(default: adaptive cutover via REPRO_WORKERS/cpu count)",
    )
    parser.add_argument(
        "--threshold", type=float, default=1e-13,
        help="default reproducibility threshold when a request sets none "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--bound-confidence", type=float, default=None,
        help="enable the analytic bound fast path at this confidence "
        "(1.0 = deterministic bounds only; default: off)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64,
        help="max requests coalesced into one reduce_many tick "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--max-linger-us", type=float, default=1000.0,
        help="max microseconds the first request of a tick waits for "
        "companions (default: %(default)s)",
    )
    parser.add_argument(
        "--queue-size", type=int, default=1024,
        help="bounded queue capacity; overflow answers 429 "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None,
        help="default per-request deadline; requests queued longer answer "
        "504 (default: none)",
    )
    parser.add_argument(
        "--max-body-bytes", type=int, default=None,
        help="request body cap in bytes; oversized bodies answer 413 "
        "(default: 64 MiB)",
    )
    parser.add_argument(
        "--no-batching", action="store_true",
        help="request-at-a-time reference mode: no coalescing, one full "
        "adaptive reduce pipeline per request (A/B baseline for the "
        "micro-batcher; see benchmarks/bench_serve.py)",
    )
    parser.add_argument(
        "--no-metrics", action="store_true",
        help="leave the observability registry disabled (/metrics serves "
        "an empty exposition)",
    )
    return parser


async def _serve(daemon: ReproServeDaemon) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed: "list[signal.Signals]" = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except NotImplementedError:  # pragma: no cover - non-POSIX loop
            signal.signal(sig, lambda *_: loop.call_soon_threadsafe(stop.set))
    await daemon.start()
    print(
        f"repro-serve: listening on http://{daemon.host}:{daemon.port} "
        f"(ranks={daemon.reducer.comm.n_ranks}, "
        f"max_batch={daemon.batcher.max_batch}, "
        f"linger={daemon.batcher.max_linger_s * 1e6:.0f}us)",
        flush=True,
    )
    try:
        await stop.wait()
        print("repro-serve: draining in-flight requests ...", flush=True)
        # stop() closes the listener, flushes the batcher queue, and runs
        # shutdown_pool() so the shm arenas are unlinked before exit
        await daemon.stop()
        print("repro-serve: shutdown complete", flush=True)
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.no_metrics:
        get_registry().enable()
    daemon_kwargs = dict(
        host=args.host,
        port=args.port,
        ranks=args.ranks,
        workers=args.workers,
        threshold=args.threshold,
        bound_confidence=args.bound_confidence,
        max_batch=args.max_batch,
        max_linger_us=args.max_linger_us,
        queue_size=args.queue_size,
        default_deadline_ms=args.deadline_ms,
        batching=not args.no_batching,
    )
    if args.max_body_bytes is not None:
        daemon_kwargs["max_body_bytes"] = args.max_body_bytes
    daemon = ReproServeDaemon(**daemon_kwargs)
    try:
        asyncio.run(_serve(daemon))
    except KeyboardInterrupt:  # pragma: no cover - non-loop signal delivery
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    sys.exit(main())
