"""Minimal HTTP/1.1 over asyncio streams (server parse + client helper).

The daemon needs exactly four things from HTTP: a request line, headers,
a sized body, and keep-alive — ``http.server`` is thread-per-connection
and brings nothing else we need, so the protocol layer is hand-rolled on
``asyncio`` streams (no new dependencies, ~anything a load balancer or
``curl`` sends parses).  Deliberately *not* implemented: chunked request
bodies (411 instead), HTTP/2, TLS (deploy behind a terminating proxy —
see docs/API.md deployment notes).

Payload encodings for numeric arrays (both directions):

* ``"values"`` — a plain JSON array of numbers (human/curl friendly);
* ``"values_b64"`` — base64 of the raw little-endian float64 bytes.  This
  is the bit-exact, parse-cheap form; JSON float round-trip is *also*
  exact (shortest-repr), but parsing hundreds of thousands of JSON
  numbers costs more than the reduction being served;
* the binary frame codec (``application/x-repro-frame``) lives in
  :mod:`repro.serve.frames` — raw little-endian payload bytes that reach
  NumPy as a zero-copy view of the connection's receive buffer.

Zero-copy plumbing on this layer: :func:`read_request` can accumulate
request bodies into a caller-owned reusable ``bytearray`` (one buffer per
connection instead of a fresh ``bytes`` per request), and
:func:`render_response_into` assembles responses from cached header
scaffolds into a reusable scratch buffer.  :class:`KeepAliveClient` is
the client-side mirror: one connection, one receive buffer, reused across
requests.
"""

from __future__ import annotations

import asyncio
import base64
import json
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "render_response",
    "render_response_into",
    "header_scaffold",
    "json_response",
    "encode_values",
    "decode_values",
    "http_request",
    "KeepAliveClient",
    "STATUS_REASONS",
]

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: request-line + headers must fit in this many bytes
MAX_HEADER_BYTES = 64 * 1024

#: default body cap (the daemon makes it configurable)
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024


class HttpError(Exception):
    """A request the server refuses; carries the HTTP status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: enough surface for routing and JSON bodies.

    ``body`` is ``bytes`` on the one-shot path, or a ``memoryview`` slice
    of the connection's reusable receive buffer when :func:`read_request`
    was given one — zero-copy for binary-frame payloads.  A view body is
    only valid until the next request is read on that connection; the
    server calls :meth:`release` once the response is written.
    """

    method: str
    path: str
    version: str
    headers: "dict[str, str]" = field(default_factory=dict)
    body: "bytes | memoryview" = b""

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"

    @property
    def content_type(self) -> str:
        """The media type, lowercased, parameters stripped."""
        return self.headers.get("content-type", "").partition(";")[0].strip().lower()

    def json(self):
        """Parse the body as JSON; raises :class:`HttpError` 400 on junk."""
        if not len(self.body):
            raise HttpError(400, "empty body where JSON was expected")
        raw = self.body if isinstance(self.body, bytes) else bytes(self.body)
        try:
            return json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from None

    def release(self) -> None:
        """Drop the body's buffer export (no-op for ``bytes`` bodies).

        Must run before the connection reads its next request: a live
        export would block the receive buffer from growing.  Any ndarray
        still viewing the buffer (e.g. an unconsumed payload view) keeps
        its own export — those must be dropped by whoever holds them.
        """
        if isinstance(self.body, memoryview):
            self.body.release()
        self.body = b""


@dataclass
class HttpResponse:
    """Client-side view of a response (see :func:`http_request`).

    ``body`` is ``bytes`` from :func:`http_request`, or a ``memoryview``
    of the client's reusable receive buffer from
    :class:`KeepAliveClient` (valid until that client's next request).
    """

    status: int
    headers: "dict[str, str]"
    body: "bytes | memoryview"

    def json(self):
        raw = self.body if isinstance(self.body, bytes) else bytes(self.body)
        return json.loads(raw)


async def _read_body_into(
    reader: asyncio.StreamReader, buffer: bytearray, length: int
) -> memoryview:
    """Fill ``buffer[:length]`` from the stream; returns the body view.

    The buffer grows monotonically (never shrinks) and is reused across
    requests, replacing the per-request ``bytes`` allocation and join the
    one-shot path pays.  Growing raises :class:`BufferError` if a previous
    request's view was never released — a loud invariant, not a leak.
    """
    if len(buffer) < length:
        buffer += b"\0" * (length - len(buffer))
    view = memoryview(buffer)[:length]
    got = 0
    while got < length:
        chunk = await reader.read(length - got)
        if not chunk:
            view.release()
            raise HttpError(400, "truncated request body")
        view[got : got + len(chunk)] = chunk
        got += len(chunk)
    return view


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body: int = DEFAULT_MAX_BODY_BYTES,
    buffer: "bytearray | None" = None,
) -> "HttpRequest | None":
    """Read one request off the stream; ``None`` on clean EOF (keep-alive
    connection closed between requests).  Malformed input raises
    :class:`HttpError` with the status the handler should answer with.

    ``buffer`` opts into the zero-copy body path: the body accumulates
    into that reusable per-connection ``bytearray`` and ``request.body``
    is a ``memoryview`` slice of it (call ``request.release()`` when
    done).  Without it the body is a fresh ``bytes`` as before.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, path, version = parts
    headers: "dict[str, str]" = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body: "bytes | memoryview" = b""
    if "transfer-encoding" in headers:
        raise HttpError(411, "chunked request bodies are not supported")
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > max_body:
            raise HttpError(413, f"body of {length} bytes exceeds cap {max_body}")
        if length:
            if buffer is not None:
                body = await _read_body_into(reader, buffer, length)
            else:
                try:
                    body = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    raise HttpError(400, "truncated request body") from None
    elif method in ("POST", "PUT", "PATCH"):
        raise HttpError(411, "Content-Length required")
    return HttpRequest(
        method=method, path=path, version=version, headers=headers, body=body
    )


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: "dict[str, str] | None" = None,
) -> bytes:
    """Serialise one HTTP/1.1 response (always with Content-Length)."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


#: cached header prefixes, keyed by (status, content_type, keep_alive) —
#: everything before the Content-Length digits is identical across
#: responses, so the hot render path does zero string formatting
_SCAFFOLDS: "dict[tuple[int, str, bool], bytes]" = {}


def header_scaffold(
    status: int, content_type: str, keep_alive: bool
) -> bytes:
    """The preformatted response head up to the ``Content-Length`` value."""
    key = (status, content_type, keep_alive)
    scaffold = _SCAFFOLDS.get(key)
    if scaffold is None:
        reason = STATUS_REASONS.get(status, "Unknown")
        scaffold = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "Content-Length: "
        ).encode("latin-1")
        _SCAFFOLDS[key] = scaffold
    return scaffold


def render_response_into(
    scratch: bytearray,
    status: int,
    body: "bytes | bytearray | memoryview",
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: "dict[str, str] | None" = None,
) -> memoryview:
    """Assemble a response into the reusable ``scratch`` buffer.

    The allocation-free sibling of :func:`render_response`: the head comes
    from a cached scaffold and the bytes land in ``scratch`` (cleared
    first), so a steady-state connection renders every response into the
    same allocation.  Returns a ``memoryview`` of the assembled response;
    the caller must hand it to the transport **and release it** before the
    next render on this connection (asyncio socket transports copy
    synchronously in ``write``, so release-after-write is safe).
    """
    scratch.clear()
    scratch += header_scaffold(status, content_type, keep_alive)
    scratch += b"%d" % len(body)
    if extra_headers:
        for name, value in extra_headers.items():
            scratch += f"\r\n{name}: {value}".encode("latin-1")
    scratch += b"\r\n\r\n"
    if len(body):
        scratch += body
    return memoryview(scratch)


def json_response(
    payload, status: int = 200, *, keep_alive: bool = True
) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode()
    return render_response(status, body, keep_alive=keep_alive)


# -- numeric payload encodings -------------------------------------------------


def encode_values(values: np.ndarray) -> str:
    """Base64 of the little-endian float64 bytes (the bit-exact wire form)."""
    arr = np.ascontiguousarray(np.asarray(values, dtype="<f8").ravel())
    return base64.b64encode(arr.tobytes()).decode("ascii")


def decode_values(obj, *, what: str = "payload") -> np.ndarray:
    """Extract a float64 vector from ``{"values": [...]}`` or
    ``{"values_b64": "..."}``; raises :class:`HttpError` 400 otherwise."""
    if not isinstance(obj, dict):
        raise HttpError(400, f"{what} must be a JSON object")
    if "values_b64" in obj:
        try:
            raw = base64.b64decode(obj["values_b64"], validate=True)
        except Exception:
            raise HttpError(400, f"{what}.values_b64 is not valid base64") from None
        if len(raw) % 8:
            raise HttpError(
                400, f"{what}.values_b64 length {len(raw)} is not a "
                "multiple of 8 (little-endian float64 expected)"
            )
        arr = np.frombuffer(raw, dtype="<f8")
        if arr.dtype.isnative and arr.flags.aligned:
            # already native-order aligned float64: hand back the
            # read-only view over the decoded bytes — the old
            # unconditional .astype doubled every b64 ingest
            return arr
        return arr.astype(np.float64)
    if "values" in obj:
        try:
            return np.asarray(obj["values"], dtype=np.float64).ravel()
        except (TypeError, ValueError):
            raise HttpError(
                400, f"{what}.values must be a flat array of numbers"
            ) from None
    raise HttpError(400, f"{what} needs either 'values' or 'values_b64'")


# -- tiny async client (tests + bench) -----------------------------------------


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: "bytes | None" = None,
    *,
    reader: "asyncio.StreamReader | None" = None,
    writer: "asyncio.StreamWriter | None" = None,
) -> HttpResponse:
    """One HTTP request; pass ``reader``/``writer`` to reuse a keep-alive
    connection (the bench's concurrent clients do), else a fresh connection
    is opened and closed."""
    own = reader is None
    if own:
        reader, writer = await asyncio.open_connection(host, port)
    assert reader is not None and writer is not None
    try:
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'close' if own else 'keep-alive'}\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        headers: "dict[str, str]" = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        resp_body = await reader.readexactly(length) if length else b""
        return HttpResponse(status=status, headers=headers, body=resp_body)
    finally:
        if own:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass


class KeepAliveClient:
    """One persistent connection with a reusable receive buffer.

    The previous keep-alive path (:func:`http_request` with an explicit
    reader/writer) reallocated a fresh ``bytes`` body per response via
    ``readexactly`` — client-side churn that polluted the bench's
    throughput floors.  This client reads each response body into one
    monotonically-grown ``bytearray``, so the returned
    :class:`HttpResponse.body` is a ``memoryview`` that stays valid until
    the *next* :meth:`request` on this client (copy it out if you need it
    longer).  Requests on one client are strictly sequential.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None
        self._buf = bytearray()
        self._last: "memoryview | None" = None
        self._send = bytearray()

    async def connect(self) -> None:
        if self._reader is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def request(
        self,
        method: str,
        path: str,
        body: "bytes | bytearray | memoryview | None" = None,
        *,
        content_type: str = "application/json",
    ) -> HttpResponse:
        """Send one request; the response body views this client's buffer."""
        if self._last is not None:
            self._last.release()
            self._last = None
        await self.connect()
        assert self._reader is not None and self._writer is not None
        reader, writer = self._reader, self._writer
        payload = b"" if body is None else body
        send = self._send
        send.clear()
        send += (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        if len(payload):
            send += payload
        writer.write(send)
        await writer.drain()
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError("server closed keep-alive connection")
        status = int(status_line.decode("latin-1").split(" ", 2)[1])
        headers: "dict[str, str]" = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        resp_body: "bytes | memoryview" = b""
        if length:
            resp_body = await _read_body_into(reader, self._buf, length)
            self._last = resp_body
        return HttpResponse(status=status, headers=headers, body=resp_body)

    async def close(self) -> None:
        if self._last is not None:
            self._last.release()
            self._last = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "KeepAliveClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
