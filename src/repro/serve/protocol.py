"""Minimal HTTP/1.1 over asyncio streams (server parse + client helper).

The daemon needs exactly four things from HTTP: a request line, headers,
a sized body, and keep-alive — ``http.server`` is thread-per-connection
and brings nothing else we need, so the protocol layer is hand-rolled on
``asyncio`` streams (no new dependencies, ~anything a load balancer or
``curl`` sends parses).  Deliberately *not* implemented: chunked request
bodies (411 instead), HTTP/2, TLS (deploy behind a terminating proxy —
see docs/API.md deployment notes).

Payload encodings for numeric arrays (both directions):

* ``"values"`` — a plain JSON array of numbers (human/curl friendly);
* ``"values_b64"`` — base64 of the raw little-endian float64 bytes.  This
  is the bit-exact, parse-cheap form the bench client uses; JSON float
  round-trip is *also* exact (shortest-repr), but parsing hundreds of
  thousands of JSON numbers costs more than the reduction being served.
"""

from __future__ import annotations

import asyncio
import base64
import json
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "render_response",
    "json_response",
    "encode_values",
    "decode_values",
    "http_request",
    "STATUS_REASONS",
]

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: request-line + headers must fit in this many bytes
MAX_HEADER_BYTES = 64 * 1024

#: default body cap (the daemon makes it configurable)
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024


class HttpError(Exception):
    """A request the server refuses; carries the HTTP status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: enough surface for routing and JSON bodies."""

    method: str
    path: str
    version: str
    headers: "dict[str, str]" = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"

    def json(self):
        """Parse the body as JSON; raises :class:`HttpError` 400 on junk."""
        if not self.body:
            raise HttpError(400, "empty body where JSON was expected")
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from None


@dataclass
class HttpResponse:
    """Client-side view of a response (see :func:`http_request`)."""

    status: int
    headers: "dict[str, str]"
    body: bytes

    def json(self):
        return json.loads(self.body)


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body: int = DEFAULT_MAX_BODY_BYTES,
) -> "HttpRequest | None":
    """Read one request off the stream; ``None`` on clean EOF (keep-alive
    connection closed between requests).  Malformed input raises
    :class:`HttpError` with the status the handler should answer with.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, path, version = parts
    headers: "dict[str, str]" = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "transfer-encoding" in headers:
        raise HttpError(411, "chunked request bodies are not supported")
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > max_body:
            raise HttpError(413, f"body of {length} bytes exceeds cap {max_body}")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated request body") from None
    elif method in ("POST", "PUT", "PATCH"):
        raise HttpError(411, "Content-Length required")
    return HttpRequest(
        method=method, path=path, version=version, headers=headers, body=body
    )


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: "dict[str, str] | None" = None,
) -> bytes:
    """Serialise one HTTP/1.1 response (always with Content-Length)."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_response(
    payload, status: int = 200, *, keep_alive: bool = True
) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode()
    return render_response(status, body, keep_alive=keep_alive)


# -- numeric payload encodings -------------------------------------------------


def encode_values(values: np.ndarray) -> str:
    """Base64 of the little-endian float64 bytes (the bit-exact wire form)."""
    arr = np.ascontiguousarray(np.asarray(values, dtype="<f8").ravel())
    return base64.b64encode(arr.tobytes()).decode("ascii")


def decode_values(obj, *, what: str = "payload") -> np.ndarray:
    """Extract a float64 vector from ``{"values": [...]}`` or
    ``{"values_b64": "..."}``; raises :class:`HttpError` 400 otherwise."""
    if not isinstance(obj, dict):
        raise HttpError(400, f"{what} must be a JSON object")
    if "values_b64" in obj:
        try:
            raw = base64.b64decode(obj["values_b64"], validate=True)
        except Exception:
            raise HttpError(400, f"{what}.values_b64 is not valid base64") from None
        if len(raw) % 8:
            raise HttpError(
                400, f"{what}.values_b64 length {len(raw)} is not a "
                "multiple of 8 (little-endian float64 expected)"
            )
        return np.frombuffer(raw, dtype="<f8").astype(np.float64)
    if "values" in obj:
        try:
            return np.asarray(obj["values"], dtype=np.float64).ravel()
        except (TypeError, ValueError):
            raise HttpError(
                400, f"{what}.values must be a flat array of numbers"
            ) from None
    raise HttpError(400, f"{what} needs either 'values' or 'values_b64'")


# -- tiny async client (tests + bench) -----------------------------------------


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: "bytes | None" = None,
    *,
    reader: "asyncio.StreamReader | None" = None,
    writer: "asyncio.StreamWriter | None" = None,
) -> HttpResponse:
    """One HTTP request; pass ``reader``/``writer`` to reuse a keep-alive
    connection (the bench's concurrent clients do), else a fresh connection
    is opened and closed."""
    own = reader is None
    if own:
        reader, writer = await asyncio.open_connection(host, port)
    assert reader is not None and writer is not None
    try:
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'close' if own else 'keep-alive'}\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        headers: "dict[str, str]" = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        resp_body = await reader.readexactly(length) if length else b""
        return HttpResponse(status=status, headers=headers, body=resp_body)
    finally:
        if own:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
