"""The repro-serve asyncio daemon: HTTP routes over the micro-batcher.

One daemon owns one :class:`AdaptiveReducer` (one simulated communicator,
one decision cache, one worker-pool handle) and one
:class:`~repro.serve.batcher.MicroBatcher`.  The event loop only parses
sockets and JSON; every reduction executes through the batcher's single
drain task (micro-batched ``reduce_many`` in a worker thread), so client
concurrency never translates into concurrent reducer calls.  Ensemble
evaluations are already batch-shaped and run straight in the executor.

Endpoints (bodies are JSON; arrays as ``values`` or base64 ``values_b64``,
see :mod:`repro.serve.protocol`):

* ``POST /v1/reduce`` — one adaptive reduction.  The global vector is
  block-scattered over the daemon's ranks (or pass explicit per-rank
  ``chunks``).  Optional ``threshold`` and ``deadline_ms``.
* ``POST /v1/reduce_many`` — a list of such items in one wire request;
  items join the same micro-batch queue individually, so they coalesce
  with other clients' traffic.
* ``POST /v1/ensemble`` — the paper's spread experiment as a service:
  ``n_trees`` permuted-leaf evaluations of one algorithm over one vector.
* ``GET /metrics`` — Prometheus text exposition of the process registry
  (``repro_*`` pipeline metrics plus the ``repro_serve_*`` family).
* ``GET /healthz`` — liveness plus queue depth.

Error mapping: queue full → 429 (with ``Retry-After``), draining → 503,
queued past deadline → 504, malformed request → 400, reducer fault → 500.

Responses carry ``value_hex`` (``float.hex``) next to ``value`` so clients
can check bitwise equality without trusting JSON float formatting —
shortest-repr round-trips exactly, but the hex form makes the contract
auditable on the wire.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Optional, Sequence

import numpy as np

from repro.mpi.comm import SimComm
from repro.obs import get_registry
from repro.selection.selector import AdaptiveReducer, AdaptiveResult
from repro.serve.batcher import (
    BatcherClosing,
    BatcherFull,
    DeadlineExceeded,
    MicroBatcher,
)
from repro.serve.protocol import (
    DEFAULT_MAX_BODY_BYTES,
    HttpError,
    decode_values,
    json_response,
    read_request,
    render_response,
)
from repro.summation.registry import get_algorithm
from repro.trees.evaluate import evaluate_ensemble
from repro.util.pool import shutdown_pool

__all__ = ["ReproServeDaemon"]

_OBS = get_registry()

#: request latency histogram bounds (seconds)
_LATENCY_BUCKETS = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
)

_ROUTES = {
    "/v1/reduce": "POST",
    "/v1/reduce_many": "POST",
    "/v1/ensemble": "POST",
    "/metrics": "GET",
    "/healthz": "GET",
}


class ReproServeDaemon:
    """Asyncio HTTP front end for one :class:`AdaptiveReducer`.

    ``port=0`` binds an ephemeral port (``self.port`` holds the real one
    after :meth:`start`) — the tests and the bench rely on that.  Use as an
    async context manager, or pair :meth:`start`/:meth:`stop` manually.
    ``workers`` is forwarded to ``reduce_many``/``evaluate_ensemble`` for
    multicore sharding; ``default_deadline_ms`` applies to requests that
    do not set their own ``deadline_ms``.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ranks: int = 8,
        workers: "int | None" = None,
        threshold: float = 1e-13,
        bound_confidence: "float | None" = None,
        max_batch: int = 64,
        max_linger_us: float = 1000.0,
        queue_size: int = 1024,
        default_deadline_ms: "float | None" = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        reducer: "AdaptiveReducer | None" = None,
        batching: bool = True,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.workers = workers
        self.batching = bool(batching)
        if not self.batching:
            # request-at-a-time reference configuration: no coalescing, and
            # each request walks the full adaptive pipeline solo through
            # ``AdaptiveReducer.reduce`` — this is exactly the daemon one
            # would write without the micro-batching subsystem, and it is
            # the baseline the serving bench measures speedup against.
            max_batch = 1
            max_linger_us = 0.0
        self.default_deadline_ms = default_deadline_ms
        self.max_body_bytes = int(max_body_bytes)
        if reducer is not None:
            self.reducer = reducer
        else:
            self.reducer = AdaptiveReducer(
                SimComm(int(ranks)),
                threshold=threshold,
                bound_confidence=bound_confidence,
            )
        self.batcher = MicroBatcher(
            self._reduce_batch,
            max_batch=max_batch,
            max_linger_s=max_linger_us / 1e6,
            queue_size=queue_size,
        )
        self._server: "asyncio.base_events.Server | None" = None

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, *, release_pool: bool = True) -> None:
        """Stop intake, drain accepted requests, release shared resources.

        Idempotent — the SIGTERM path and the async-context exit may both
        get here.  ``release_pool`` runs :func:`repro.util.pool.shutdown_pool`
        (itself idempotent), unlinking the dispatch arenas' shared-memory
        segments so a signalled daemon leaves nothing in ``/dev/shm``.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.drain()
        if release_pool:
            shutdown_pool()

    async def __aenter__(self) -> "ReproServeDaemon":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the blocking batch executor (runs in a worker thread) --------------
    def _reduce_batch(
        self,
        items: Sequence[Sequence[np.ndarray]],
        threshold: Optional[float],
    ) -> "list[AdaptiveResult]":
        if not self.batching:
            return [
                self.reducer.reduce(chunks, threshold=threshold)
                for chunks in items
            ]
        return self.reducer.reduce_many(
            items, threshold=threshold, workers=self.workers
        )

    # -- connection handling ------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if _OBS.enabled:
            _OBS.counter("repro_serve_connections_total").inc()
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.max_body_bytes
                    )
                except HttpError as exc:
                    writer.write(
                        json_response(
                            {"error": exc.message}, exc.status, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                payload = await self._dispatch(request)
                writer.write(payload)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client vanished mid-exchange; nothing to answer
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _dispatch(self, request) -> bytes:
        loop = asyncio.get_running_loop()
        started = loop.time()
        endpoint = request.path if request.path in _ROUTES else "unknown"
        keep = request.keep_alive
        try:
            if endpoint == "unknown":
                raise HttpError(404, f"no route for {request.path!r}")
            if request.method != _ROUTES[endpoint]:
                raise HttpError(
                    405, f"{endpoint} expects {_ROUTES[endpoint]}"
                )
            if endpoint == "/healthz":
                status, body = self._handle_healthz()
            elif endpoint == "/metrics":
                status, body = 200, None  # rendered below (not JSON)
            elif endpoint == "/v1/reduce":
                status, body = await self._handle_reduce(request)
            elif endpoint == "/v1/reduce_many":
                status, body = await self._handle_reduce_many(request)
            else:
                status, body = await self._handle_ensemble(request)
        except HttpError as exc:
            status, body = exc.status, {"error": exc.message}
        except BatcherFull as exc:
            status, body = 429, {"error": str(exc)}
        except BatcherClosing as exc:
            status, body = 503, {"error": str(exc)}
        except DeadlineExceeded as exc:
            status, body = 504, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - 500, never a dropped conn
            status, body = 500, {"error": f"{type(exc).__name__}: {exc}"}
        if _OBS.enabled:
            _OBS.counter(
                "repro_serve_requests_total",
                endpoint=endpoint,
                status=str(status),
            ).inc()
            _OBS.histogram(
                "repro_serve_request_seconds",
                buckets=_LATENCY_BUCKETS,
                endpoint=endpoint,
            ).observe(loop.time() - started)
        if endpoint == "/metrics" and status == 200:
            # rendered after the request metrics above so a scrape sees itself
            text = _OBS.render_prometheus()
            return render_response(
                200,
                text.encode(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
                keep_alive=keep,
            )
        if status == 429:
            return render_response(
                status,
                json.dumps(body, separators=(",", ":")).encode(),
                keep_alive=keep,
                extra_headers={"Retry-After": "1"},
            )
        return json_response(body, status, keep_alive=keep)

    # -- endpoint handlers ---------------------------------------------------
    def _handle_healthz(self):
        return 200, {
            "status": "draining" if self.batcher.closing else "ok",
            "ranks": self.reducer.comm.n_ranks,
            "queue_depth": self.batcher.depth,
            "batches_processed": self.batcher.batches_processed,
        }

    def _parse_item(self, obj, *, what: str):
        """One reduction item -> (chunks, threshold, deadline_s)."""
        if not isinstance(obj, dict):
            raise HttpError(400, f"{what} must be a JSON object")
        if "chunks" in obj:
            raw = obj["chunks"]
            if not isinstance(raw, list):
                raise HttpError(400, f"{what}.chunks must be a list of arrays")
            if len(raw) != self.reducer.comm.n_ranks:
                raise HttpError(
                    400,
                    f"{what}.chunks has {len(raw)} chunks for a "
                    f"{self.reducer.comm.n_ranks}-rank communicator",
                )
            chunks = []
            for i, c in enumerate(raw):
                try:
                    chunks.append(np.asarray(c, dtype=np.float64).ravel())
                except (TypeError, ValueError):
                    raise HttpError(
                        400, f"{what}.chunks[{i}] is not a flat numeric array"
                    ) from None
        else:
            values = decode_values(obj, what=what)
            chunks = self.reducer.comm.scatter_array(values)
        threshold = obj.get("threshold")
        if threshold is not None:
            try:
                threshold = float(threshold)
            except (TypeError, ValueError):
                raise HttpError(400, f"{what}.threshold must be a number") from None
            if not threshold >= 0:  # also rejects NaN
                raise HttpError(400, f"{what}.threshold must be >= 0")
        deadline_ms = obj.get("deadline_ms", self.default_deadline_ms)
        if deadline_ms is not None:
            try:
                deadline_ms = float(deadline_ms)
            except (TypeError, ValueError):
                raise HttpError(400, f"{what}.deadline_ms must be a number") from None
            if not deadline_ms > 0:
                raise HttpError(400, f"{what}.deadline_ms must be > 0")
        deadline_s = deadline_ms / 1e3 if deadline_ms is not None else None
        return chunks, threshold, deadline_s

    @staticmethod
    def _result_payload(result: AdaptiveResult) -> dict:
        value = float(result.value)
        d = result.decision
        return {
            "value": value,
            "value_hex": value.hex(),
            "algorithm": d.code,
            "tier": d.tier,
            "threshold": d.threshold,
            "predicted_std": float(d.predicted_std),
            "n": int(d.profile.n),
        }

    async def _handle_reduce(self, request):
        chunks, threshold, deadline_s = self._parse_item(
            request.json(), what="body"
        )
        future = self.batcher.submit(
            chunks, threshold=threshold, deadline_s=deadline_s
        )
        result = await future
        return 200, self._result_payload(result)

    async def _handle_reduce_many(self, request):
        body = request.json()
        if not isinstance(body, dict) or not isinstance(body.get("items"), list):
            raise HttpError(400, "body needs an 'items' list")
        items = body["items"]
        shared_threshold = body.get("threshold")
        parsed = []
        for i, obj in enumerate(items):
            if (
                shared_threshold is not None
                and isinstance(obj, dict)
                and "threshold" not in obj
            ):
                obj = {**obj, "threshold": shared_threshold}
            parsed.append(self._parse_item(obj, what=f"items[{i}]"))
        if not parsed:
            return 200, {"results": []}
        # all-or-nothing capacity check up front (no awaits between here and
        # the submits, so the event loop cannot interleave another producer):
        # a wire batch either fully enqueues or is fully rejected with 429
        if self.batcher.depth + len(parsed) > self.batcher.queue_size:
            raise BatcherFull(
                f"queue at {self.batcher.depth}/{self.batcher.queue_size} "
                f"cannot take {len(parsed)} more request(s)"
            )
        futures: "list[asyncio.Future | None]" = [None] * len(parsed)
        groups: "dict[tuple, list[int]]" = {}
        for i, (_, threshold, deadline_s) in enumerate(parsed):
            groups.setdefault((threshold, deadline_s), []).append(i)
        for (threshold, deadline_s), idxs in groups.items():
            futs = self.batcher.submit_many(
                [parsed[i][0] for i in idxs],
                threshold=threshold,
                deadline_s=deadline_s,
            )
            for i, fut in zip(idxs, futs):
                futures[i] = fut
        results = await asyncio.gather(*futures)
        return 200, {"results": [self._result_payload(r) for r in results]}

    async def _handle_ensemble(self, request):
        body = request.json()
        data = decode_values(body, what="body")
        try:
            algorithm = get_algorithm(str(body.get("algorithm", "")))
        except KeyError:
            raise HttpError(
                400, f"unknown algorithm {body.get('algorithm')!r}"
            ) from None
        shape = body.get("shape", "balanced")
        if shape not in ("balanced", "serial"):
            raise HttpError(400, "shape must be 'balanced' or 'serial'")
        try:
            n_trees = int(body.get("n_trees", 0))
        except (TypeError, ValueError):
            raise HttpError(400, "n_trees must be an integer") from None
        if not 1 <= n_trees <= 1 << 20:
            raise HttpError(400, "n_trees must be in [1, 1048576]")
        seed = body.get("seed")
        if seed is not None:
            try:
                seed = int(seed)
            except (TypeError, ValueError):
                raise HttpError(400, "seed must be an integer") from None
        loop = asyncio.get_running_loop()
        try:
            values = await loop.run_in_executor(
                None,
                lambda: evaluate_ensemble(
                    data, shape, algorithm, n_trees, seed=seed,
                    workers=self.workers,
                ),
            )
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        spread = float(values.max() - values.min())
        return 200, {
            "values_hex": [float(v).hex() for v in values],
            "spread": spread,
            "distinct": int(np.unique(values).size),
            "algorithm": algorithm.code,
            "n_trees": n_trees,
        }
