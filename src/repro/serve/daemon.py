"""The repro-serve asyncio daemon: HTTP routes over the micro-batcher.

One daemon owns one :class:`AdaptiveReducer` (one simulated communicator,
one decision cache, one worker-pool handle) and one
:class:`~repro.serve.batcher.MicroBatcher`.  The event loop only parses
sockets and JSON; every reduction executes through the batcher's single
drain task (micro-batched ``reduce_many`` in a worker thread), so client
concurrency never translates into concurrent reducer calls.  Ensemble
evaluations are already batch-shaped and run straight in the executor.

The data plane is zero-copy end to end for the binary codec
(``Content-Type: application/x-repro-frame``, :mod:`repro.serve.frames`):
request bodies accumulate into a reusable per-connection buffer, frame
payloads reach NumPy as ``memoryview``-backed arrays (no intermediate
``bytes``, no forced ``astype``), per-rank chunks are zero-copy slices of
that buffer which the selector concatenates *directly* into the worker
pool's shared-memory arena, and responses render from cached header
scaffolds into a reusable scratch buffer.  The JSON codec stays for
compatibility; codec traffic is split on
``repro_serve_codec_total{codec}`` with per-codec ingest latency.

Endpoints (JSON bodies use ``values`` or base64 ``values_b64``; the
reduce endpoints also speak the binary frame codec, see
:mod:`repro.serve.protocol` / :mod:`repro.serve.frames`):

* ``POST /v1/reduce`` — one adaptive reduction.  The global vector is
  block-scattered over the daemon's ranks (or pass explicit per-rank
  ``chunks``).  Optional ``threshold`` and ``deadline_ms``.
* ``POST /v1/reduce_many`` — a list of such items in one wire request;
  items join the same micro-batch queue individually, so they coalesce
  with other clients' traffic.
* ``POST /v1/ensemble`` — the paper's spread experiment as a service:
  ``n_trees`` permuted-leaf evaluations of one algorithm over one vector.
* ``GET /metrics`` — Prometheus text exposition of the process registry
  (``repro_*`` pipeline metrics plus the ``repro_serve_*`` family).
* ``GET /healthz`` — liveness plus queue depth.

Error mapping: queue full → 429 (with ``Retry-After``), draining → 503,
queued past deadline → 504, malformed request → 400, reducer fault → 500.

Responses carry ``value_hex`` (``float.hex``) next to ``value`` so clients
can check bitwise equality without trusting JSON float formatting —
shortest-repr round-trips exactly, but the hex form makes the contract
auditable on the wire.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Optional, Sequence

import numpy as np

from repro.mpi.comm import SimComm
from repro.obs import get_registry
from repro.selection.selector import AdaptiveReducer, AdaptiveResult
from repro.serve.batcher import (
    BatcherClosing,
    BatcherFull,
    DeadlineExceeded,
    MicroBatcher,
)
from repro.serve.frames import (
    FRAME_CONTENT_TYPE,
    KIND_REQUEST,
    KIND_RESPONSE,
    append_frame,
    parse_frame,
    payload_array,
)
from repro.serve.protocol import (
    DEFAULT_MAX_BODY_BYTES,
    HttpError,
    decode_values,
    json_response,
    read_request,
    render_response,
    render_response_into,
)
from repro.summation.registry import get_algorithm
from repro.trees.evaluate import evaluate_ensemble
from repro.util.chunking import split_indices
from repro.util.pool import shutdown_pool

__all__ = ["ReproServeDaemon"]

_OBS = get_registry()

#: request latency histogram bounds (seconds)
_LATENCY_BUCKETS = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
)

_ROUTES = {
    "/v1/reduce": "POST",
    "/v1/reduce_many": "POST",
    "/v1/ensemble": "POST",
    "/metrics": "GET",
    "/healthz": "GET",
}


class ReproServeDaemon:
    """Asyncio HTTP front end for one :class:`AdaptiveReducer`.

    ``port=0`` binds an ephemeral port (``self.port`` holds the real one
    after :meth:`start`) — the tests and the bench rely on that.  Use as an
    async context manager, or pair :meth:`start`/:meth:`stop` manually.
    ``workers`` is forwarded to ``reduce_many``/``evaluate_ensemble`` for
    multicore sharding; ``default_deadline_ms`` applies to requests that
    do not set their own ``deadline_ms``.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ranks: int = 8,
        workers: "int | None" = None,
        threshold: float = 1e-13,
        bound_confidence: "float | None" = None,
        max_batch: int = 64,
        max_linger_us: float = 1000.0,
        queue_size: int = 1024,
        default_deadline_ms: "float | None" = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        reducer: "AdaptiveReducer | None" = None,
        batching: bool = True,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.workers = workers
        self.batching = bool(batching)
        if not self.batching:
            # request-at-a-time reference configuration: no coalescing, and
            # each request walks the full adaptive pipeline solo through
            # ``AdaptiveReducer.reduce`` — this is exactly the daemon one
            # would write without the micro-batching subsystem, and it is
            # the baseline the serving bench measures speedup against.
            max_batch = 1
            max_linger_us = 0.0
        self.default_deadline_ms = default_deadline_ms
        self.max_body_bytes = int(max_body_bytes)
        if reducer is not None:
            self.reducer = reducer
        else:
            self.reducer = AdaptiveReducer(
                SimComm(int(ranks)),
                threshold=threshold,
                bound_confidence=bound_confidence,
            )
        self.batcher = MicroBatcher(
            self._reduce_batch,
            max_batch=max_batch,
            max_linger_s=max_linger_us / 1e6,
            queue_size=queue_size,
        )
        self._server: "asyncio.base_events.Server | None" = None

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, *, release_pool: bool = True) -> None:
        """Stop intake, drain accepted requests, release shared resources.

        Idempotent — the SIGTERM path and the async-context exit may both
        get here.  ``release_pool`` runs :func:`repro.util.pool.shutdown_pool`
        (itself idempotent), unlinking the dispatch arenas' shared-memory
        segments so a signalled daemon leaves nothing in ``/dev/shm``.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.drain()
        if release_pool:
            shutdown_pool()

    async def __aenter__(self) -> "ReproServeDaemon":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the blocking batch executor (runs in a worker thread) --------------
    def _reduce_batch(
        self,
        items: "list[Sequence[np.ndarray]]",
        threshold: Optional[float],
    ) -> "list[AdaptiveResult]":
        try:
            if not self.batching:
                return [
                    self.reducer.reduce(chunks, threshold=threshold)
                    for chunks in items
                ]
            return self.reducer.reduce_many(
                items, threshold=threshold, workers=self.workers
            )
        finally:
            # Drop operand references *inside* the executor call, before the
            # result future resolves: chunks may be zero-copy views of a
            # connection's receive buffer, and the worker thread's own
            # work-item teardown (which would free them) races the event
            # loop reading that connection's next request.  Clearing here is
            # sequenced strictly before set_result, so by the time the
            # response goes out no thread still pins the buffer.
            items.clear()

    # -- connection handling ------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if _OBS.enabled:
            _OBS.counter("repro_serve_connections_total").inc()
        # the connection's whole allocation story: bodies accumulate into
        # body_buf, binary response frames assemble in frame_buf, and the
        # full HTTP response renders into scratch — all three grow to the
        # connection's high-water mark once and are then reused per request
        body_buf = bytearray()
        frame_buf = bytearray()
        scratch = bytearray()
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.max_body_bytes, buffer=body_buf
                    )
                except HttpError as exc:
                    writer.write(
                        json_response(
                            {"error": exc.message}, exc.status, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request, scratch, frame_buf)
                try:
                    writer.write(response)
                    await writer.drain()
                finally:
                    # asyncio socket transports copy in write(), so the
                    # scratch view can be released as soon as drain returns;
                    # both releases must happen before the next request or
                    # the buffers cannot grow (BufferError by design)
                    if isinstance(response, memoryview):
                        response.release()
                    request.release()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client vanished mid-exchange; nothing to answer
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _dispatch(
        self, request, scratch: bytearray, frame_buf: bytearray
    ) -> "bytes | memoryview":
        """Route one request; the response is a ``memoryview`` of
        ``scratch`` (released by the connection loop after the write) or
        plain ``bytes`` on the cold ``/metrics`` path."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        endpoint = request.path if request.path in _ROUTES else "unknown"
        keep = request.keep_alive
        frame = None  # (header, payload array) for binary-codec 200s
        try:
            if endpoint == "unknown":
                raise HttpError(404, f"no route for {request.path!r}")
            if request.method != _ROUTES[endpoint]:
                raise HttpError(
                    405, f"{endpoint} expects {_ROUTES[endpoint]}"
                )
            binary = request.content_type == FRAME_CONTENT_TYPE
            if endpoint == "/healthz":
                status, body = self._handle_healthz()
            elif endpoint == "/metrics":
                status, body = 200, None  # rendered below (not JSON)
            elif endpoint == "/v1/reduce":
                if binary:
                    status, frame = await self._handle_reduce_binary(request)
                    body = None
                else:
                    status, body = await self._handle_reduce(request)
            elif endpoint == "/v1/reduce_many":
                if binary:
                    status, frame = await self._handle_reduce_many_binary(
                        request
                    )
                    body = None
                else:
                    status, body = await self._handle_reduce_many(request)
            else:
                if binary:
                    raise HttpError(
                        400,
                        "/v1/ensemble is JSON-only (binary frames carry "
                        "reduction payloads)",
                    )
                status, body = await self._handle_ensemble(request)
        except HttpError as exc:
            status, body, frame = exc.status, {"error": exc.message}, None
        except BatcherFull as exc:
            status, body, frame = 429, {"error": str(exc)}, None
        except BatcherClosing as exc:
            status, body, frame = 503, {"error": str(exc)}, None
        except DeadlineExceeded as exc:
            status, body, frame = 504, {"error": str(exc)}, None
        except Exception as exc:  # noqa: BLE001 - 500, never a dropped conn
            status, body, frame = 500, {"error": f"{type(exc).__name__}: {exc}"}, None
        if _OBS.enabled:
            _OBS.counter(
                "repro_serve_requests_total",
                endpoint=endpoint,
                status=str(status),
            ).inc()
            _OBS.histogram(
                "repro_serve_request_seconds",
                buckets=_LATENCY_BUCKETS,
                endpoint=endpoint,
            ).observe(loop.time() - started)
        if endpoint == "/metrics" and status == 200:
            # rendered after the request metrics above so a scrape sees itself
            text = _OBS.render_prometheus()
            return render_response(
                200,
                text.encode(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
                keep_alive=keep,
            )
        render_started = loop.time()
        if frame is not None:
            header, payload = frame
            frame_buf.clear()
            append_frame(frame_buf, header, payload, kind=KIND_RESPONSE)
            out = render_response_into(
                scratch,
                status,
                frame_buf,
                content_type=FRAME_CONTENT_TYPE,
                keep_alive=keep,
            )
        else:
            extra = {"Retry-After": "1"} if status == 429 else None
            out = render_response_into(
                scratch,
                status,
                json.dumps(body, separators=(",", ":")).encode(),
                keep_alive=keep,
                extra_headers=extra,
            )
        if _OBS.enabled:
            _OBS.histogram(
                "repro_serve_render_seconds", buckets=_LATENCY_BUCKETS
            ).observe(loop.time() - render_started)
        return out

    # -- endpoint handlers ---------------------------------------------------
    def _handle_healthz(self):
        return 200, {
            "status": "draining" if self.batcher.closing else "ok",
            "ranks": self.reducer.comm.n_ranks,
            "queue_depth": self.batcher.depth,
            "batches_processed": self.batcher.batches_processed,
        }

    def _coerce_threshold(self, threshold, *, what: str) -> "float | None":
        if threshold is None:
            return None
        try:
            threshold = float(threshold)
        except (TypeError, ValueError):
            raise HttpError(400, f"{what}.threshold must be a number") from None
        if not threshold >= 0:  # also rejects NaN
            raise HttpError(400, f"{what}.threshold must be >= 0")
        return threshold

    def _coerce_deadline(self, deadline_ms, *, what: str) -> "float | None":
        """``deadline_ms`` (or the daemon default) -> seconds, or None."""
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is None:
            return None
        try:
            deadline_ms = float(deadline_ms)
        except (TypeError, ValueError):
            raise HttpError(400, f"{what}.deadline_ms must be a number") from None
        if not deadline_ms > 0:
            raise HttpError(400, f"{what}.deadline_ms must be > 0")
        return deadline_ms / 1e3

    def _obs_ingest(self, codec: str, seconds: float) -> None:
        """One decoded payload: codec split + wire-to-ndarray latency."""
        if _OBS.enabled:
            _OBS.counter("repro_serve_codec_total", codec=codec).inc()
            _OBS.histogram(
                "repro_serve_ingest_seconds",
                buckets=_LATENCY_BUCKETS,
                codec=codec,
            ).observe(seconds)

    def _scatter_view(self, arr: np.ndarray) -> "list[np.ndarray]":
        """Block-scatter without ``SimComm.scatter_array``'s f8 coercion.

        Frame payload slices stay zero-copy views in their wire dtype, so
        precision-aware selection sees fp16/fp32 inputs at their own unit
        roundoff instead of silently upcast copies.
        """
        return [
            arr[s] for s in split_indices(arr.size, self.reducer.comm.n_ranks)
        ]

    def _parse_item(self, obj, *, what: str):
        """One reduction item -> (chunks, threshold, deadline_s)."""
        if not isinstance(obj, dict):
            raise HttpError(400, f"{what} must be a JSON object")
        if "chunks" in obj:
            raw = obj["chunks"]
            if not isinstance(raw, list):
                raise HttpError(400, f"{what}.chunks must be a list of arrays")
            if len(raw) != self.reducer.comm.n_ranks:
                raise HttpError(
                    400,
                    f"{what}.chunks has {len(raw)} chunks for a "
                    f"{self.reducer.comm.n_ranks}-rank communicator",
                )
            chunks = []
            for i, c in enumerate(raw):
                try:
                    chunks.append(np.asarray(c, dtype=np.float64).ravel())
                except (TypeError, ValueError):
                    raise HttpError(
                        400, f"{what}.chunks[{i}] is not a flat numeric array"
                    ) from None
        else:
            values = decode_values(obj, what=what)
            chunks = self.reducer.comm.scatter_array(values)
        threshold = self._coerce_threshold(obj.get("threshold"), what=what)
        deadline_s = self._coerce_deadline(obj.get("deadline_ms"), what=what)
        return chunks, threshold, deadline_s

    @staticmethod
    def _result_meta(result: AdaptiveResult) -> dict:
        d = result.decision
        return {
            "algorithm": d.code,
            "tier": d.tier,
            "threshold": d.threshold,
            "predicted_std": float(d.predicted_std),
            "n": int(d.profile.n),
        }

    @staticmethod
    def _result_payload(result: AdaptiveResult) -> dict:
        value = float(result.value)
        return {
            "value": value,
            "value_hex": value.hex(),
            **ReproServeDaemon._result_meta(result),
        }

    async def _handle_reduce(self, request):
        loop = asyncio.get_running_loop()
        started = loop.time()
        chunks, threshold, deadline_s = self._parse_item(
            request.json(), what="body"
        )
        self._obs_ingest("json", loop.time() - started)
        future = self.batcher.submit(
            chunks, threshold=threshold, deadline_s=deadline_s
        )
        result = await future
        return 200, self._result_payload(result)

    async def _handle_reduce_binary(self, request):
        """``/v1/reduce`` over the binary frame codec (zero-copy ingest).

        The 1-D payload is sliced into per-rank views of the connection's
        receive buffer; the buffer stays pinned until this handler's future
        resolves (the connection is strictly sequential), so the views are
        valid through the whole reduction.  The response is a binary frame
        whose 8 payload bytes are the result's exact float64 bits.
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        header, payload = parse_frame(
            request.body, kind=KIND_REQUEST, what="body"
        )
        arr = payload_array(header, payload, what="body")
        if arr.ndim != 1:
            raise HttpError(
                400,
                f"body: /v1/reduce takes a 1-D frame payload, got shape "
                f"{list(arr.shape)}",
            )
        chunks = self._scatter_view(arr)
        threshold = self._coerce_threshold(header.get("threshold"), what="body")
        deadline_s = self._coerce_deadline(
            header.get("deadline_ms"), what="body"
        )
        self._obs_ingest("binary", loop.time() - started)
        result = await self.batcher.submit(
            chunks, threshold=threshold, deadline_s=deadline_s
        )
        out_header = {
            "status": 200,
            "dtype": "<f8",
            "shape": [1],
            **self._result_meta(result),
        }
        return 200, (out_header, np.asarray([result.value], dtype="<f8"))

    async def _handle_reduce_many_binary(self, request):
        """``/v1/reduce_many`` over the binary frame codec.

        The payload is a 2-D ``[items, n]`` matrix; each row scatters into
        zero-copy per-rank views and the rows join the micro-batch queue
        individually (all-or-nothing, like the JSON path).  The response
        payload is the float64 result vector in row order.
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        header, payload = parse_frame(
            request.body, kind=KIND_REQUEST, what="body"
        )
        arr = payload_array(header, payload, what="body")
        if arr.ndim != 2:
            raise HttpError(
                400,
                f"body: /v1/reduce_many takes a 2-D [items, n] frame "
                f"payload, got shape {list(arr.shape)}",
            )
        threshold = self._coerce_threshold(header.get("threshold"), what="body")
        deadline_s = self._coerce_deadline(
            header.get("deadline_ms"), what="body"
        )
        items = [self._scatter_view(row) for row in arr]
        self._obs_ingest("binary", loop.time() - started)
        if not items:
            empty = np.empty(0, dtype="<f8")
            return 200, (
                {"status": 200, "dtype": "<f8", "shape": [0], "results": []},
                empty,
            )
        futures = self.batcher.submit_many(
            items, threshold=threshold, deadline_s=deadline_s
        )
        results = await asyncio.gather(*futures)
        values = np.asarray([r.value for r in results], dtype="<f8")
        out_header = {
            "status": 200,
            "dtype": "<f8",
            "shape": [len(results)],
            "results": [self._result_meta(r) for r in results],
        }
        return 200, (out_header, values)

    async def _handle_reduce_many(self, request):
        loop = asyncio.get_running_loop()
        started = loop.time()
        body = request.json()
        if not isinstance(body, dict) or not isinstance(body.get("items"), list):
            raise HttpError(400, "body needs an 'items' list")
        items = body["items"]
        shared_threshold = body.get("threshold")
        parsed = []
        for i, obj in enumerate(items):
            if (
                shared_threshold is not None
                and isinstance(obj, dict)
                and "threshold" not in obj
            ):
                obj = {**obj, "threshold": shared_threshold}
            parsed.append(self._parse_item(obj, what=f"items[{i}]"))
        self._obs_ingest("json", loop.time() - started)
        if not parsed:
            return 200, {"results": []}
        # all-or-nothing capacity check up front (no awaits between here and
        # the submits, so the event loop cannot interleave another producer):
        # a wire batch either fully enqueues or is fully rejected with 429
        if self.batcher.depth + len(parsed) > self.batcher.queue_size:
            raise BatcherFull(
                f"queue at {self.batcher.depth}/{self.batcher.queue_size} "
                f"cannot take {len(parsed)} more request(s)"
            )
        futures: "list[asyncio.Future | None]" = [None] * len(parsed)
        groups: "dict[tuple, list[int]]" = {}
        for i, (_, threshold, deadline_s) in enumerate(parsed):
            groups.setdefault((threshold, deadline_s), []).append(i)
        for (threshold, deadline_s), idxs in groups.items():
            futs = self.batcher.submit_many(
                [parsed[i][0] for i in idxs],
                threshold=threshold,
                deadline_s=deadline_s,
            )
            for i, fut in zip(idxs, futs):
                futures[i] = fut
        results = await asyncio.gather(*futures)
        return 200, {"results": [self._result_payload(r) for r in results]}

    async def _handle_ensemble(self, request):
        loop = asyncio.get_running_loop()
        started = loop.time()
        body = request.json()
        data = decode_values(body, what="body")
        self._obs_ingest("json", loop.time() - started)
        try:
            algorithm = get_algorithm(str(body.get("algorithm", "")))
        except KeyError:
            raise HttpError(
                400, f"unknown algorithm {body.get('algorithm')!r}"
            ) from None
        shape = body.get("shape", "balanced")
        if shape not in ("balanced", "serial"):
            raise HttpError(400, "shape must be 'balanced' or 'serial'")
        try:
            n_trees = int(body.get("n_trees", 0))
        except (TypeError, ValueError):
            raise HttpError(400, "n_trees must be an integer") from None
        if not 1 <= n_trees <= 1 << 20:
            raise HttpError(400, "n_trees must be in [1, 1048576]")
        seed = body.get("seed")
        if seed is not None:
            try:
                seed = int(seed)
            except (TypeError, ValueError):
                raise HttpError(400, "seed must be an integer") from None
        try:
            values = await loop.run_in_executor(
                None,
                lambda: evaluate_ensemble(
                    data, shape, algorithm, n_trees, seed=seed,
                    workers=self.workers,
                ),
            )
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        spread = float(values.max() - values.min())
        return 200, {
            "values_hex": [float(v).hex() for v in values],
            "spread": spread,
            "distinct": int(np.unique(values).size),
            "algorithm": algorithm.code,
            "n_trees": n_trees,
        }
