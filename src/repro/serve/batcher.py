"""Dynamic micro-batching: coalesce concurrent requests into one
``reduce_many`` call per tick.

The serving economics (BENCH_adaptive.json): one adaptive reduction pays
~4–5 ms of profile+select walked item-by-item, but the batched pipeline
amortises that to ~0.5–0.7 ms/item — *if* items arrive together.  A network
front end naturally receives them one at a time, so the batcher re-creates
the batch at the queue: requests land in a bounded queue, and a single
drain task takes the first waiter, **lingers** up to ``max_linger_s`` for
companions (or until ``max_batch`` of them), then executes the whole tick
as one :meth:`AdaptiveReducer.reduce_many` call in a worker thread.

Semantics:

* **Backpressure** — a full queue raises :class:`BatcherFull` at submit
  (the daemon answers 429); nothing is silently dropped.
* **Deadlines** — each request may carry an absolute deadline; requests
  that expire while queued are failed with :class:`DeadlineExceeded` (504)
  *instead of* being computed, so a backlog sheds load from the oldest
  end.  A tick can legitimately drain zero live requests (all expired) —
  the selector layer accepts the resulting empty batch.
* **Graceful drain** — :meth:`drain` stops intake (:class:`BatcherClosing`
  → 503), processes everything already accepted, then parks the task.
  Accepted work is never abandoned.
* **Result identity** — ticks group requests by threshold and each group
  is one ``reduce_many`` call, whose per-item results are bitwise-equal to
  standalone :meth:`AdaptiveReducer.reduce` calls by the selector's
  serving-path contract; batching changes cost, never values.

Batches execute one at a time (the drain task awaits each executor call),
so a single-reducer daemon never runs two ``reduce_many`` calls
concurrently from this path — the decision cache and dispatch arenas see
strictly ordered traffic even at high client concurrency.

Item lifetime: queued items may be zero-copy ndarray views of a
connection's receive buffer (the binary-frame ingest path), pinned only
until their results are delivered.  The batcher therefore drops every
item reference as soon as its future resolves — a retained view would
block that connection's buffer from growing for its next request.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.obs import DEFAULT_SIZE_BUCKETS, get_registry

__all__ = [
    "BatcherClosing",
    "BatcherFull",
    "DeadlineExceeded",
    "MicroBatcher",
]

_OBS = get_registry()


def _item_nbytes(item: Any) -> int:
    """Payload bytes of one queued item (a per-rank chunk sequence)."""
    try:
        return sum(int(getattr(c, "nbytes", 0)) for c in item)
    except TypeError:  # not iterable; opaque item
        return int(getattr(item, "nbytes", 0))

#: batch-size histogram bounds (requests per tick, not seconds)
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)

#: linger histogram bounds (seconds): 10 µs .. 1 s
_LINGER_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0,
)


class BatcherFull(Exception):
    """The bounded queue is full — the daemon answers 429."""


class BatcherClosing(Exception):
    """The batcher is draining — the daemon answers 503."""


class DeadlineExceeded(Exception):
    """The request's deadline passed while it was queued — 504."""


@dataclass
class _Pending:
    """One queued request: payload plus completion plumbing."""

    item: Any
    threshold: "float | None"
    deadline: "float | None"  # absolute loop time, None = no deadline
    future: asyncio.Future = field(repr=False)
    enqueued_at: float = 0.0
    nbytes: int = 0  # payload size, captured at submit (item is cleared later)


class MicroBatcher:
    """Bounded request queue drained into batched reduction calls.

    ``reduce_fn(items, threshold)`` is the blocking batch executor
    (typically a closure over ``AdaptiveReducer.reduce_many``); it runs in
    the event loop's default thread executor so the loop keeps serving
    sockets while NumPy works.  ``max_linger_s`` bounds how long the first
    request of a tick waits for companions; ``max_batch`` bounds how many
    join it.  ``max_linger_s=0`` (with ``max_batch=1``) is the
    request-at-a-time baseline the serving bench compares against.
    """

    def __init__(
        self,
        reduce_fn: Callable[[Sequence[Any], Optional[float]], Sequence[Any]],
        *,
        max_batch: int = 64,
        max_linger_s: float = 1e-3,
        queue_size: int = 1024,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_linger_s < 0:
            raise ValueError("max_linger_s must be >= 0")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self._reduce_fn = reduce_fn
        self.max_batch = int(max_batch)
        self.max_linger_s = float(max_linger_s)
        self.queue_size = int(queue_size)
        self._pending: "deque[_Pending]" = deque()
        self._wakeup = asyncio.Event()
        self._closing = False
        self._task: "asyncio.Task | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self.batches_processed = 0
        self.requests_accepted = 0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Spawn the drain task on the running loop (idempotent)."""
        if self._task is None or self._task.done():
            self._loop = asyncio.get_running_loop()
            self._closing = False
            self._task = self._loop.create_task(
                self._run(), name="repro-serve-batcher"
            )

    async def drain(self) -> None:
        """Stop intake, flush every accepted request, park the task.

        Idempotent; safe to call with the queue empty (the tick that
        drains zero requests is a supported case end to end).
        """
        self._closing = True
        self._wakeup.set()
        if self._task is not None:
            task, self._task = self._task, None
            await task

    @property
    def closing(self) -> bool:
        return self._closing

    @property
    def depth(self) -> int:
        return len(self._pending)

    # -- intake -------------------------------------------------------------
    def submit(
        self,
        item: Any,
        *,
        threshold: "float | None" = None,
        deadline_s: "float | None" = None,
    ) -> "asyncio.Future":
        """Enqueue one request; returns the future its result lands on.

        Raises :class:`BatcherClosing` during drain and :class:`BatcherFull`
        when the bounded queue is at capacity — callers map those to
        503/429.  ``deadline_s`` is relative (seconds from now).
        """
        return self.submit_many(
            [item], threshold=threshold, deadline_s=deadline_s
        )[0]

    def submit_many(
        self,
        items: Sequence[Any],
        *,
        threshold: "float | None" = None,
        deadline_s: "float | None" = None,
    ) -> "list[asyncio.Future]":
        """All-or-nothing bulk submit (one wire request's worth of items
        either fully enqueues or fully rejects — no partial batches)."""
        assert self._loop is not None, "start() before submit()"
        if self._closing:
            self._count_reject("closing", len(items))
            raise BatcherClosing("serving daemon is draining")
        if len(self._pending) + len(items) > self.queue_size:
            self._count_reject("queue_full", len(items))
            raise BatcherFull(
                f"queue at {len(self._pending)}/{self.queue_size} cannot "
                f"take {len(items)} more request(s)"
            )
        now = self._loop.time()
        deadline = now + deadline_s if deadline_s is not None else None
        futures: "list[asyncio.Future]" = []
        for item in items:
            fut = self._loop.create_future()
            self._pending.append(
                _Pending(
                    item=item,
                    threshold=threshold,
                    deadline=deadline,
                    future=fut,
                    enqueued_at=now,
                    nbytes=_item_nbytes(item) if _OBS.enabled else 0,
                )
            )
            futures.append(fut)
        self.requests_accepted += len(items)
        if _OBS.enabled:
            _OBS.gauge("repro_serve_queue_depth").set(len(self._pending))
        self._wakeup.set()
        return futures

    def _count_reject(self, reason: str, count: int) -> None:
        if _OBS.enabled:
            _OBS.counter("repro_serve_rejected_total", reason=reason).inc(count)

    # -- the drain task -----------------------------------------------------
    async def _run(self) -> None:
        assert self._loop is not None
        while True:
            while not self._pending:
                if self._closing:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
            first_at = self._loop.time()
            linger_until = first_at + self.max_linger_s
            while len(self._pending) < self.max_batch and not self._closing:
                remaining = linger_until - self._loop.time()
                if remaining <= 0:
                    break
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(self._wakeup.wait(), remaining)
                except asyncio.TimeoutError:
                    break
            lingered = self._loop.time() - first_at
            batch = [
                self._pending.popleft()
                for _ in range(min(len(self._pending), self.max_batch))
            ]
            if _OBS.enabled:
                _OBS.gauge("repro_serve_queue_depth").set(len(self._pending))
                _OBS.histogram(
                    "repro_serve_linger_seconds", buckets=_LINGER_BUCKETS
                ).observe(lingered)
            await self._process(batch)
            # drop the processed batch before parking: items may be
            # zero-copy views of a connection's receive buffer, and a
            # lingering reference here would block that buffer from
            # growing for its next request (bytearray resize BufferError)
            del batch

    async def _process(self, batch: "list[_Pending]") -> None:
        assert self._loop is not None
        now = self._loop.time()
        live: "list[_Pending]" = []
        for p in batch:
            if p.future.done():  # client went away; nothing to deliver
                p.item = None
                continue
            if p.deadline is not None and now >= p.deadline:
                p.item = None
                if _OBS.enabled:
                    _OBS.counter("repro_serve_deadline_misses_total").inc()
                p.future.set_exception(
                    DeadlineExceeded(
                        f"deadline passed after {now - p.enqueued_at:.3f}s "
                        "in queue"
                    )
                )
                continue
            live.append(p)
        self.batches_processed += 1
        if _OBS.enabled:
            _OBS.counter("repro_serve_batches_total").inc()
            _OBS.histogram(
                "repro_serve_batch_items", buckets=_BATCH_BUCKETS
            ).observe(len(live))
            _OBS.histogram(
                "repro_serve_batch_bytes", buckets=DEFAULT_SIZE_BUCKETS
            ).observe(float(sum(p.nbytes for p in live)))
        if not live:
            return  # a legitimately empty tick: everything expired
        groups: "dict[float | None, list[_Pending]]" = {}
        for p in live:
            groups.setdefault(p.threshold, []).append(p)
        for threshold, group in groups.items():
            items = [p.item for p in group]
            try:
                results = await self._loop.run_in_executor(
                    None, self._reduce_fn, items, threshold
                )
            except Exception as exc:  # noqa: BLE001 - delivered per-request
                for p in group:
                    p.item = None  # release buffer-view payloads promptly
                    if not p.future.done():
                        p.future.set_exception(exc)
                continue
            finally:
                del items
            for p, result in zip(group, results):
                p.item = None  # release buffer-view payloads promptly
                if not p.future.done():
                    p.future.set_result(result)
