#!/usr/bin/env python
"""Debugging irreproducibility: trap a suspicious run, replay it bitwise.

Sec. II.B's warning — "variability in floating-point error accumulation may
become so great that debugging is impaired" — is a workflow problem: the
run that produced the weird number is gone by the time anyone looks.  This
example shows the mitigation the simulator enables: during a campaign of
nondeterministic reductions, capture the full provenance (tree + operands +
algorithm) of the worst run as a JSON trace, then reproduce it exactly and
dissect it.

Run:  python examples/debug_trace.py
"""

from __future__ import annotations

import numpy as np

from repro import SimComm, zero_sum_set
from repro.exact import exact_sum
from repro.mpi import ReductionTrace, make_reduction_op, record, replay
from repro.summation import get_algorithm


def main() -> None:
    data = zero_sum_set(16_000, dr=32, seed=99)
    comm = SimComm(24, seed=5)
    chunks = comm.scatter_array(data)
    op = make_reduction_op(get_algorithm("ST"))

    print("campaign: 30 nondeterministic reductions of an exact-zero sum")
    worst = None
    for i in range(30):
        res = comm.reduce_nondeterministic(chunks, op, jitter=0.5, fault_prob=0.1)
        if worst is None or abs(res.value) > abs(worst[1].value):
            worst = (i, res)
    run_idx, res = worst
    print(f"worst run: #{run_idx}, value = {res.value:.6e} "
          f"(exact = {exact_sum(data):.1f}), tree depth = {res.tree.depth()}\n")

    # capture the provenance of exactly that run
    value, trace = record(chunks, op, res.tree)
    assert value == res.value
    payload = trace.to_json()
    print(f"trace captured: {len(payload)} bytes of JSON "
          f"({trace.n_ranks} ranks, {len(trace.data_hex)} operands)")

    # ... attach to a bug report; later, anywhere:
    replayed = replay(ReductionTrace.from_json(payload))
    print(f"replayed value:  {replayed:.6e}  (bitwise equal: {replayed == res.value})")

    # dissect: rerun the same tree with stronger operators
    for code in ("K", "CP", "PR"):
        v, _ = record(chunks, make_reduction_op(get_algorithm(code)), res.tree)
        print(f"  same tree under {code:>2}: {v:.6e}")
    print("\nthe tree is innocent — the algorithm is the problem; CP/PR fix it")


if __name__ == "__main__":
    main()
