#!/usr/bin/env python
"""Quickstart: why reduction order matters, and what to do about it.

Builds a hostile summand set (exact sum zero, wide dynamic range), sums it
under 100 randomly permuted reduction trees with each of the paper's four
algorithms, and prints the spread — then lets the adaptive selector pick an
algorithm for a tolerance.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdaptiveReducer,
    SimComm,
    evaluate_ensemble,
    get_algorithm,
    zero_sum_set,
)
from repro.metrics import error_stats
from repro.selection import profile_chunk


def main() -> None:
    # A set of 8192 doubles whose *exact* sum is zero, with binary exponents
    # spanning 32 binades: the Sec. V.B workload.
    data = zero_sum_set(8192, dr=32, seed=2015)

    print("summing 8192 values (exact sum = 0, dynamic range = 32 binades)")
    print("under 100 randomly permuted balanced reduction trees:\n")
    print(f"{'algorithm':>22}  {'min':>12} {'max':>12} {'spread':>12} distinct")
    for code in ("ST", "K", "CP", "PR"):
        values = evaluate_ensemble(data, "balanced", get_algorithm(code), 100, seed=1)
        stats = error_stats(values, data)
        print(
            f"{get_algorithm(code).name:>20} ({code:>2})"
            f"  {values.min():>12.3e} {values.max():>12.3e}"
            f" {stats.spread:>12.3e} {stats.n_distinct:>8}"
        )

    print("\nprofile of the data (what the runtime selector sees):")
    profile = profile_chunk(data).as_set_profile()
    print(f"  n = {profile.n}, condition k = {profile.condition},"
          f" dynamic range = {profile.dynamic_range} binades")

    print("\nadaptive reduction across 16 simulated MPI ranks:")
    comm = SimComm(16, seed=7)
    reducer = AdaptiveReducer(comm)
    for threshold in (1e-6, 1e-13, 0.0):
        result = reducer.reduce(comm.scatter_array(data), threshold=threshold)
        print(
            f"  tolerance {threshold:>7.0e}: chose {result.decision.code:>2}"
            f" -> value {result.value:.6e}"
        )

    print("\nbitwise check: prerounded summation under 5 nondeterministic runs:")
    op_values = set()
    from repro.mpi import make_reduction_op

    op = make_reduction_op(get_algorithm("PR"))
    for _ in range(5):
        op_values.add(comm.reduce_nondeterministic(comm.scatter_array(data), op).value)
    print(f"  distinct values: {sorted(op_values)} (always exactly one)")


if __name__ == "__main__":
    main()
