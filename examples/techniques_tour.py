#!/usr/bin/env python
"""Tour of every Sec. III technique family on one hostile reduction.

The paper surveys five families of techniques for reproducible accuracy —
fixed reduction order (III.A), interval arithmetic (III.B), high/reduced
precision (III.C), compensated summation (III.D), prerounded summation
(III.E) — and evaluates two.  All five are implemented here; this example
puts each on the same exact-zero-sum workload and prints what it delivers:
value, error, order-sensitivity, and (for intervals) certified digits.

Run:  python examples/techniques_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import zero_sum_set
from repro.interval import IntervalSum
from repro.precision import EmulatedPrecisionSum, tune_precision
from repro.summation import SumContext, get_algorithm
from repro.trees import evaluate_ensemble


def main() -> None:
    data = zero_sum_set(4096, dr=32, seed=31415)
    ctx = SumContext.for_data(data)
    print("workload: 4096 doubles, exact sum = 0, dynamic range = 32 binades\n")

    print(f"{'technique':>34} {'value':>12} {'spread over 40 trees':>22}")
    rows = [
        ("III.A fixed order (sorted, SO)", "SO"),
        ("III.B interval midpoint (IV)", "IV"),
        ("III.D Kahan compensated (K)", "K"),
        ("III.D composite precision (CP)", "CP"),
        ("III.E prerounded (PR)", "PR"),
        ("baseline standard (ST)", "ST"),
        ("extension: AccSum distillation", "AS"),
        ("oracle: exact superaccumulator", "EX"),
    ]
    for label, code in rows:
        alg = get_algorithm(code)
        value = alg.sum_array(data, ctx)
        vals = evaluate_ensemble(data, "balanced", alg, 40, seed=1)
        spread = float(vals.max() - vals.min())
        print(f"{label:>34} {value:>12.3e} {spread:>22.3e}")

    print("\nIII.B in detail — the guaranteed enclosure:")
    enclosure = IntervalSum().enclosure(data)
    print(f"  enclosure = [{enclosure.lo:.3e}, {enclosure.hi:.3e}]")
    print(f"  contains the exact sum (0.0): {enclosure.contains(0.0)}")
    print(f"  certified decimal digits: {enclosure.digits():.1f}"
          "  <- 'not suitable for applications needing many digits'")

    print("\nIII.C in detail — precision tuning on a benign workload:")
    benign = np.abs(np.random.default_rng(0).uniform(0.5, 1.5, 3000))
    for tol in (1e-3, 1e-7, 1e-12):
        res = tune_precision(benign, tol, seed=2)
        print(
            f"  tolerance {tol:.0e}: minimal significand = {res.precision_bits} bits "
            f"(memory saving {res.memory_saving:.0%}, worst error {res.worst_rel_error:.1e})"
        )
    p24 = EmulatedPrecisionSum(24).sum_array(data)
    print(f"\n  ...but float32-width accumulation of the hostile set: {p24:.3e}"
          "\n  (reduced precision and cancellation do not mix)")


if __name__ == "__main__":
    main()
