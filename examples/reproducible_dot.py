#!/usr/bin/env python
"""Reproducible dot products: the ReproBLAS story beyond plain sums.

Generates an ill-conditioned dot-product problem (Ogita-Rump-Oishi GenDot),
then shows each dot algorithm's accuracy and order-sensitivity — including
the bitwise-reproducible PR dot built from TwoProd pairs and prerounded
summation.

Run:  python examples/reproducible_dot.py
"""

from __future__ import annotations

import numpy as np

from repro.generators import dot_condition_number, ill_conditioned_dot
from repro.summation import DOT_ALGORITHMS, dot_exact


def main() -> None:
    w = ill_conditioned_dot(2000, condition=1e12, seed=77)
    k = dot_condition_number(w.x, w.y)
    exact = dot_exact(w.x, w.y)
    print(f"dot problem: n = {w.x.size}, condition number = {k:.3e}")
    print(f"correctly rounded result: {exact:.17e}\n")

    rng = np.random.default_rng(1)
    perms = [rng.permutation(w.x.size) for _ in range(50)]
    print(f"{'algorithm':>4} {'value':>24} {'rel. error':>12} {'distinct over 50 orders':>24}")
    for code, fn in DOT_ALGORITHMS.items():
        v = fn(w.x, w.y)
        rel = abs(v - exact) / abs(exact)
        distinct = len({fn(w.x[p], w.y[p]) for p in perms} | {v})
        print(f"{code:>4} {v:>24.17e} {rel:>12.2e} {distinct:>24}")

    print(
        "\nST wanders with element order; K and CP (Dot2) are far more stable"
        "\nbut carry no guarantee; PR is bitwise identical by construction."
    )


if __name__ == "__main__":
    main()
