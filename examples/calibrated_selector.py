#!/usr/bin/env python
"""Calibrate a grid classifier and ship it: Fig. 12 as a tool.

Runs a reduced (k, dr) sweep (the Fig. 9/12 methodology), turns the measured
error variabilities into a :class:`GridClassifier`, serialises it to JSON,
reloads it, and uses it as the policy of an :class:`AdaptiveReducer` — the
complete "calibrate offline once, select online cheaply" workflow the paper's
Sec. V.D advocates.

Run:  python examples/calibrated_selector.py
"""

from __future__ import annotations

import math
from pathlib import Path

from repro import SimComm, generate_sum_set
from repro.experiments.fig12_selection import PAPER_THRESHOLDS, classifier_from_sweep
from repro.experiments.grid import format_k, grid_sweep
from repro.selection import AdaptiveReducer, GridClassifier
from repro.viz import render_category_grid


def main() -> None:
    print("calibrating: sweeping the (k, dr) grid at n = 2048 "
          "(60 trees per cell)...")
    cells = grid_sweep(
        n_values=[2048],
        k_values=[1.0, 1e3, 1e6, 1e9, 1e12, 1e15],
        dr_values=[0, 16, 32],
        codes=("ST", "K", "CP", "PR"),
        n_trees=60,
        seed=99,
    )
    classifier = classifier_from_sweep(cells)

    path = Path("results") if Path("results").is_dir() else Path(".")
    out = path / "calibration.json"
    out.write_text(classifier.to_json())
    print(f"calibration table written to {out} "
          f"({len(classifier.cells)} cells)\n")

    t = PAPER_THRESHOLDS[0]
    grid = classifier.decision_grid(t)
    labels = {
        (format_k(cell.condition), str(cell.dynamic_range)): code
        for cell, code in grid
    }
    print(
        render_category_grid(
            [format_k(10.0**d) for d in (0, 3, 6, 9, 12, 15)],
            ["0", "16", "32"],
            labels,
            title=f"cheapest acceptable algorithm at t = {t:.0e} (rows k, cols dr)",
        )
    )

    print("\nreloading the shipped table and reducing live data with it:")
    reloaded = GridClassifier.from_json(out.read_text())
    comm = SimComm(8, seed=1)
    reducer = AdaptiveReducer(comm, policy=reloaded, threshold=t)
    for k in (1.0, 1e9, math.inf):
        data = generate_sum_set(2048, k, 16, seed=5).values
        result = reducer.reduce(comm.scatter_array(data))
        print(
            f"  data with k = {format_k(k):>5}: chose {result.decision.code:>2} "
            f"(measured cell std {result.decision.predicted_std:.1e}), "
            f"value = {result.value:.6e}"
        )


if __name__ == "__main__":
    main()
