#!/usr/bin/env python
"""Reproducible convergence of an iterative solver.

The introduction's nightmare: "a scientist may run the same computation
several times with differing results ... even small errors at the beginning
of the simulation may eventually compound."  Here a Jacobi iteration solves
a diffusion system; its convergence test is a *global residual reduction*
across simulated ranks.  With nondeterministic plain summation the residual
— and therefore the iteration count and the answer — changes run to run;
with the adaptive selector's choice the whole trajectory is bitwise stable.

Run:  python examples/iterative_solver.py
"""

from __future__ import annotations

import numpy as np

from repro import SimComm
from repro.mpi import make_reduction_op
from repro.selection import AdaptiveReducer
from repro.summation import get_algorithm


def make_system(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """1-D diffusion-like tridiagonal system, diagonally dominant."""
    rng = np.random.default_rng(seed)
    b = rng.uniform(-1.0, 1.0, n)
    return b, rng.uniform(0.05, 0.45, n - 1)


def jacobi_residual_run(
    b: np.ndarray,
    off: np.ndarray,
    comm: SimComm,
    reduce_mode: str,
    max_iters: int = 200,
    tol: float = 1e-10,
    seed: int = 0,
) -> tuple[int, float, list[float]]:
    """Jacobi iterations; the stopping test reduces ||r||_1 globally.

    ``reduce_mode`` is ``"nondet-st"`` (plain sums, arrival-order trees) or
    ``"adaptive"`` (profile -> select -> fixed-context reduce).
    """
    n = b.size
    x = np.zeros(n)
    residual_trace: list[float] = []
    reducer = AdaptiveReducer(comm, threshold=1e-13)
    st_op = make_reduction_op(get_algorithm("ST"))
    for it in range(1, max_iters + 1):
        # Jacobi sweep for A = tridiag(-off, 2, -off)
        neighbor = np.zeros(n)
        neighbor[:-1] += off * x[1:]
        neighbor[1:] += off * x[:-1]
        x = (b + neighbor) / 2.0
        # signed residual components r = b - A x
        ax = 2.0 * x
        ax[:-1] -= off * x[1:]
        ax[1:] -= off * x[:-1]
        r = b - ax
        # the global reduction under test: sum of signed residual terms
        # scaled to near-cancellation (the solver's drift indicator)
        terms = np.concatenate([r, -r * (1.0 - 1e-12)])
        chunks = comm.scatter_array(terms)
        if reduce_mode == "nondet-st":
            drift = comm.reduce_nondeterministic(chunks, st_op, jitter=0.5).value
        else:
            drift = reducer.reduce(chunks, nondeterministic=True).value
        norm = float(np.abs(r).max())
        residual_trace.append(drift)
        if norm < tol:
            return it, drift, residual_trace
    return max_iters, drift, residual_trace


def main() -> None:
    n = 16_384
    b, off = make_system(n, seed=11)
    comm = SimComm(16, seed=5)

    print("drift indicator (a near-cancelling global sum) over 3 repeated runs:\n")
    for mode in ("nondet-st", "adaptive"):
        finals = []
        for run in range(3):
            iters, drift, trace = jacobi_residual_run(b, off, comm, mode)
            finals.append(trace[min(25, len(trace) - 1)])
        distinct = len(set(finals))
        print(f"  mode={mode:<10} iteration-25 drift per run: "
              + ", ".join(f"{v:+.3e}" for v in finals))
        print(f"  {'':<15} distinct values across runs: {distinct}\n")

    print("with plain nondeterministic summation the indicator wanders run to")
    print("run; the adaptive reducer (which selects PR for this cancelling")
    print("workload) pins it bitwise — the solver's logged trajectory becomes")
    print("reproducible without paying PR cost on the benign reductions.")


if __name__ == "__main__":
    main()
