#!/usr/bin/env python
"""N-body force reduction: the paper's motivating ill-conditioned workload.

Sec. V.A: "N-body simulations involve reductions of floating-point values
that are ill-conditioned; both k and dr can frequently be very large."  This
example builds a clustered N-body system whose probe particle sits where
pulls nearly cancel, distributes the force terms across simulated MPI ranks,
and shows:

1. run-to-run drift of the net force under nondeterministic reduction with
   plain summation — enough to flip the *sign* of a near-zero force;
2. the runtime selector diagnosing the ill-conditioning from its one-pass
   profile and switching to a robust algorithm;
3. the fault-injection campaign: even with 30% of ranks stalling (and the
   reduction tree reshaping around them), the selected reduction stays
   bitwise stable.

Run:  python examples/nbody_reduction.py
"""

from __future__ import annotations

import numpy as np

from repro import SimComm, nbody_force_terms
from repro.exact import exact_sum
from repro.metrics import profile_set
from repro.mpi import FaultModel, MachineTopology, make_reduction_op, run_campaign
from repro.selection import AdaptiveReducer
from repro.summation import get_algorithm


def main() -> None:
    workload = nbody_force_terms(
        20_001, axis=0, clustering=3.0, asymmetry=0.005, seed=42
    )
    terms = workload.terms
    profile = profile_set(terms)
    print(f"force terms on probe particle: n = {profile.n}")
    print(f"  condition number k  = {profile.condition:.3e}")
    print(f"  dynamic range dr    = {profile.dynamic_range} binades")
    print(f"  exact net force     = {exact_sum(terms):.6e}\n")

    topo = MachineTopology(nodes=4, sockets_per_node=2, cores_per_socket=4)
    comm = SimComm(topology=topo, seed=3)
    chunks = comm.scatter_array(terms)

    print("10 nondeterministic reductions (arrival-order trees) per algorithm:")
    for code in ("ST", "K", "CP", "PR"):
        op = make_reduction_op(get_algorithm(code))
        values = [
            comm.reduce_nondeterministic(chunks, op, jitter=0.5).value
            for _ in range(10)
        ]
        print(
            f"  {code:>2}: {len(set(values))} distinct value(s), "
            f"range [{min(values):.6e}, {max(values):.6e}]"
        )

    print("\nadaptive selection at tolerance 1e-13 (relative):")
    reducer = AdaptiveReducer(comm, threshold=1e-13)
    result = reducer.reduce(chunks, nondeterministic=True)
    d = result.decision
    print(f"  profile-estimated k = {d.profile.condition:.3e}, dr = {d.profile.dynamic_range}")
    print(f"  chose {d.code} (cost x{d.relative_cost:.1f} vs ST), value = {result.value:.6e}")

    print("\nfault campaign (30% rank stall probability, 40 runs):")
    model = FaultModel(jitter=0.3, fault_prob=0.3, fault_delay=40.0)
    for code in ("ST", d.code):
        campaign = run_campaign(comm, chunks, make_reduction_op(get_algorithm(code)), model, 40)
        print(
            f"  {code:>2}: {campaign.n_distinct_values} distinct value(s), "
            f"tree depth {campaign.depths.min()}-{campaign.depths.max()}, "
            f"completion time {campaign.times.mean():.0f} (sim units)"
        )


if __name__ == "__main__":
    main()
