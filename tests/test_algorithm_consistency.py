"""Cross-cutting consistency properties over the whole algorithm zoo.

These are the invariants that keep the three execution forms (scalar
accumulator, vectorised state ops, whole-array kernel) from silently
diverging as the zoo grows — every algorithm that advertises a capability
is held to it here, including ones added later (the tests enumerate the
registry, not a hand-written list).
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import exact_sum_fraction
from repro.fp.properties import UNIT_ROUNDOFF
from repro.summation import SumContext, all_algorithms, get_algorithm

ALL = all_algorithms()
VOPS_ALGS = [a for a in ALL if a.vector_ops is not None]
DET_ALGS = [a for a in ALL if a.deterministic]

values_lists = st.lists(
    st.floats(allow_nan=False, allow_infinity=False, min_value=-1e10, max_value=1e10),
    min_size=2,
    max_size=24,
)


@pytest.mark.parametrize("alg", VOPS_ALGS, ids=lambda a: a.code)
class TestVectorOpsMatchAccumulators:
    """VectorOps merges must be bitwise the accumulator merges."""

    @given(values_lists)
    @settings(max_examples=25, deadline=None)
    def test_pairwise_merge_bitwise(self, alg, xs):
        x = np.array(xs, dtype=np.float64)
        n = (x.size // 2) * 2
        a, b = x[:n:2], x[1:n:2]
        vops = alg.vector_ops
        state = vops.merge(vops.init(a), vops.init(b))
        out = vops.result(state)
        ctx = SumContext.for_data(x)
        for i in range(a.size):
            acc1 = alg.make_accumulator(ctx)
            acc1.add(float(a[i]))
            acc2 = alg.make_accumulator(ctx)
            acc2.add(float(b[i]))
            acc1.merge(acc2)
            assert acc1.result() == out[i]

    def test_three_level_chain_bitwise(self, alg):
        rng = np.random.default_rng(7)
        x = rng.uniform(-1e5, 1e5, 8)
        vops = alg.vector_ops
        s = vops.init(x)
        while s[0].size > 1:
            s = vops.merge(
                tuple(c[0::2] for c in s), tuple(c[1::2] for c in s)
            )
        from repro.trees import balanced, evaluate_tree_generic

        assert float(vops.result(s)[0]) == evaluate_tree_generic(
            balanced(8), x, alg, SumContext.for_data(x)
        )


@pytest.mark.parametrize("alg", DET_ALGS, ids=lambda a: a.code)
class TestDeterministicContract:
    """`deterministic=True` is a bitwise promise; hold every claimant to it."""

    @given(values_lists, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_permutation_invariance(self, alg, xs, seed):
        x = np.array(xs, dtype=np.float64)
        ctx = SumContext.for_data(x)
        ref = alg.sum_array(x, ctx)
        perm = np.random.default_rng(seed).permutation(x.size)
        assert alg.sum_array(x[perm], ctx) == ref

    def test_chunking_invariance(self, alg):
        rng = np.random.default_rng(11)
        x = rng.uniform(-1e8, 1e8, 257)
        ctx = SumContext.for_data(x)
        ref = alg.sum_array(x, ctx)
        for cut in (1, 64, 200):
            a = alg.make_accumulator(ctx)
            a.add_array(x[:cut])
            b = alg.make_accumulator(ctx)
            b.add_array(x[cut:])
            a.merge(b)
            assert a.result() == ref


@pytest.mark.parametrize("alg", ALL, ids=lambda a: a.code)
class TestUniversalSanity:
    def test_negation_antisymmetry_on_magnitude(self, alg):
        """|sum(-x)| == |sum(x)| for every algorithm (rounding is sign-
        symmetric in round-to-nearest-even)."""
        rng = np.random.default_rng(13)
        x = rng.uniform(-1e3, 1e3, 100)
        ctx_pos = SumContext.for_data(x)
        ctx_neg = SumContext.for_data(-x)
        assert alg.sum_array(-x, ctx_neg) == -alg.sum_array(x, ctx_pos)

    def test_error_within_generic_bound(self, alg):
        rng = np.random.default_rng(17)
        x = rng.uniform(-1e6, 1e6, 500)
        ctx = SumContext.for_data(x)
        v = alg.sum_array(x, ctx)
        exact = exact_sum_fraction(x)
        bound = 2 * 500 * UNIT_ROUNDOFF * float(np.sum(np.abs(x)))
        assert abs(float(Fraction(v) - exact)) <= bound

    def test_repr_mentions_code(self, alg):
        assert alg.code in repr(alg)
