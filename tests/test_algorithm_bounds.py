"""Per-algorithm worst-case bounds: every bound must actually bound."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.exact import exact_sum_fraction
from repro.metrics.bounds import (
    analytical_bound,
    compensated_bound,
    kahan_bound,
    pairwise_bound,
    prerounded_bound,
)
from repro.summation import SumContext, get_algorithm


def _err(code: str, x: np.ndarray) -> float:
    alg = get_algorithm(code)
    v = alg.sum_array(x, SumContext.for_data(x))
    return abs(float(Fraction(v) - exact_sum_fraction(x)))


@pytest.fixture(params=range(4), ids=lambda i: f"workload{i}")
def workload(request):
    rng = np.random.default_rng(request.param)
    kind = request.param
    if kind == 0:
        return rng.uniform(-1000, 1000, 3000)
    if kind == 1:
        return rng.uniform(1, 2, 3000) * 2.0 ** rng.integers(-20, 21, 3000)
    if kind == 2:
        base = rng.uniform(1, 2, 1500) * 2.0 ** rng.integers(0, 30, 1500)
        x = np.concatenate([base, -base])
        rng.shuffle(x)
        return x
    return rng.uniform(-1e-3, 1e9, 3000)


class TestBoundsHold:
    def test_pairwise(self, workload):
        assert _err("PW", workload) <= pairwise_bound(workload)

    def test_kahan(self, workload):
        assert _err("K", workload) <= kahan_bound(workload)

    def test_composite(self, workload):
        assert _err("CP", workload) <= compensated_bound(workload)

    def test_prerounded(self, workload):
        assert _err("PR", workload) <= prerounded_bound(workload)

    def test_standard_within_higham(self, workload):
        assert _err("ST", workload) <= analytical_bound(workload)


class TestBoundsOrdering:
    def test_hierarchy_on_large_n(self):
        """For large n the bounds reproduce the paper's quality ladder."""
        rng = np.random.default_rng(9)
        x = rng.uniform(-1, 1, 100_000)
        assert (
            prerounded_bound(x)
            < compensated_bound(x)
            < kahan_bound(x)
            < pairwise_bound(x)
            < analytical_bound(x)
        )

    def test_kahan_bound_n_independent_first_order(self):
        x1 = np.ones(1000)
        x2 = np.ones(100_000)
        # per unit of mass, the first-order term does not grow with n
        r1 = kahan_bound(x1) / float(np.sum(np.abs(x1)))
        r2 = kahan_bound(x2) / float(np.sum(np.abs(x2)))
        assert r2 < 2 * r1

    def test_trivial_sizes(self):
        for fn in (pairwise_bound, kahan_bound, compensated_bound):
            assert fn(np.array([])) == 0.0
            assert fn(np.array([3.0])) == 0.0
        assert prerounded_bound(np.array([])) == 0.0
        assert prerounded_bound(np.zeros(4)) == 0.0
