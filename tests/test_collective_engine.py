"""Vectorized collective engine: bitwise pins against the object path.

The compiled collective path (``SimComm`` with ``engine="vector"``: one
:meth:`VectorOps.fold` sweep for the rank-local phase, then the rank tree as
a compiled level schedule) is only admissible because every value it
produces is bitwise equal to the object path — one accumulator per rank and
one Python ``op.combine`` per tree node.  These tests pin that equality for
every VectorOps algorithm over ragged chunk lists (including empty chunks
and single-rank communicators), balanced/serial/random/topology trees,
arrival-order reductions, the batched ``reduce_batch`` stream, and the
serving layer (``AdaptiveReducer.reduce_many`` + the batched profiler).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.comm import SimComm
from repro.mpi.ops import make_reduction_op
from repro.mpi.topology import MachineTopology
from repro.selection.profile import StreamProfile, profile_batch
from repro.selection.selector import AdaptiveReducer
from repro.summation import get_algorithm
from repro.trees import _ckernels
from repro.trees.shapes import balanced, random_shape, serial
from repro.util.chunking import pack_ragged

#: every algorithm exposing VectorOps (the vector-capable collective ops)
VOPS_CODES = ("ST", "K", "KBN", "CP", "PW", "DD")

_PROFILE_FIELDS = (
    "n", "max_abs", "min_abs_nonzero",
    "abs_sum_hi", "abs_sum_lo", "sum_hi", "sum_lo",
)


def _bits_equal(a: float, b: float) -> bool:
    return np.float64(a).tobytes() == np.float64(b).tobytes()


def _ragged_chunks(n_ranks: int, seed: int, max_len: int = 120) -> list:
    """Adversarial rank chunks: ragged lengths, empties, zeros and -0.0."""
    rng = np.random.default_rng(seed)
    chunks = []
    for r in range(n_ranks):
        w = int(rng.integers(0, max_len))
        c = rng.uniform(-1.0, 1.0, w) * 10.0 ** rng.integers(-9, 10, size=w)
        if w and rng.random() < 0.5:
            idx = rng.integers(0, w, size=max(1, w // 5))
            c[idx] = 0.0
            c[idx[: len(idx) // 2]] = -0.0
        chunks.append(c)
    return chunks


def _trees(n_ranks: int, seed: int):
    yield balanced(n_ranks)
    yield serial(n_ranks)
    yield random_shape(n_ranks, seed=seed)


class TestVectorEngineBitwise:
    @pytest.mark.parametrize("code", VOPS_CODES)
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 7, 16])
    def test_vector_equals_object_over_trees(self, code, n_ranks):
        comm = SimComm(n_ranks)
        op = make_reduction_op(get_algorithm(code))
        for seed in range(4):
            chunks = _ragged_chunks(n_ranks, seed=seed * 31 + n_ranks)
            for tree in _trees(n_ranks, seed=seed):
                ref = comm.reduce(chunks, op, tree, engine="object").value
                out = comm.reduce(chunks, op, tree, engine="vector").value
                assert _bits_equal(ref, out), (code, n_ranks, seed)

    @pytest.mark.parametrize("code", VOPS_CODES)
    def test_topology_tree_and_cost_metadata(self, code):
        topo = MachineTopology(nodes=2, sockets_per_node=2, cores_per_socket=3)
        comm = SimComm(topology=topo)
        op = make_reduction_op(get_algorithm(code))
        chunks = _ragged_chunks(comm.n_ranks, seed=5)
        ref = comm.reduce(chunks, op, "topology", engine="object")
        out = comm.reduce(chunks, op, "topology", engine="vector")
        assert _bits_equal(ref.value, out.value)
        assert out.simulated_time == ref.simulated_time
        assert out.algorithm_code == code

    @pytest.mark.parametrize("code", ["K", "CP", "DD"])
    def test_nondeterministic_same_seed_same_bits(self, code):
        op = make_reduction_op(get_algorithm(code))
        chunks = _ragged_chunks(12, seed=77)
        runs_obj = [
            SimComm(12, seed=3).reduce_nondeterministic(
                chunks, op, jitter=0.5, engine="object"
            )
            for _ in range(3)
        ]
        runs_vec = [
            SimComm(12, seed=3).reduce_nondeterministic(
                chunks, op, jitter=0.5, engine="vector"
            )
            for _ in range(3)
        ]
        for a, b in zip(runs_obj, runs_vec):
            assert _bits_equal(a.value, b.value)
            assert np.array_equal(a.tree.parents(), b.tree.parents())

    def test_auto_engine_matches_explicit_vector(self):
        comm = SimComm(6)
        op = make_reduction_op(get_algorithm("K"))
        chunks = _ragged_chunks(6, seed=11)
        auto = comm.reduce(chunks, op, "balanced").value
        vec = comm.reduce(chunks, op, "balanced", engine="vector").value
        assert _bits_equal(auto, vec)

    def test_allreduce_broadcasts_one_bit_pattern(self):
        comm = SimComm(5)
        op = make_reduction_op(get_algorithm("CP"))
        chunks = _ragged_chunks(5, seed=13)
        values = comm.allreduce(chunks, op, "balanced")
        assert len(values) == 5
        assert len({np.float64(v).tobytes() for v in values}) == 1


class TestLocalPhase:
    @pytest.mark.parametrize("code", VOPS_CODES)
    def test_fold_matrix_rows_equal_object_accumulators(self, code):
        alg = get_algorithm(code)
        op = make_reduction_op(alg)
        chunks = _ragged_chunks(10, seed=23)
        matrix, lengths = pack_ragged(chunks)
        states = op.local_matrix(matrix, lengths)
        values = np.asarray(alg.vector_ops.result(states), dtype=np.float64)
        for r, chunk in enumerate(chunks):
            acc = alg.make_accumulator(None)
            acc.add_array(chunk)
            assert _bits_equal(acc.result(), values[r]), (code, r)

    @pytest.mark.parametrize("code", VOPS_CODES)
    def test_local_states_equals_numpy_fold(self, code):
        """The compiled pointer-table kernels and the NumPy fold agree."""
        alg = get_algorithm(code)
        op = make_reduction_op(alg)
        chunks = _ragged_chunks(9, seed=29)
        states = op.local_states(chunks)
        matrix, lengths = pack_ragged(chunks)
        ref = alg.vector_ops.fold(matrix, lengths)
        assert len(states) == len(ref)
        for got, want in zip(states, ref):
            assert np.asarray(got).tobytes() == np.asarray(want).tobytes()

    @pytest.mark.parametrize("code", ["ST", "K", "KBN", "CP", "DD"])
    def test_fold_chunks_kernel_matches_numpy_fold(self, code):
        vops = get_algorithm(code).vector_ops
        if not _ckernels.has_fold_kernel(vops):
            pytest.skip("compiled fold kernels unavailable")
        chunks = _ragged_chunks(11, seed=37)
        got = _ckernels.fold_chunks(chunks, vops)
        matrix, lengths = pack_ragged(chunks)
        want = vops.fold(matrix, lengths)
        for g, w in zip(got, want):
            assert np.asarray(g).tobytes() == np.asarray(w).tobytes()

    def test_local_matrix_without_vops_raises(self):
        op = make_reduction_op(get_algorithm("PR"))
        with pytest.raises(TypeError):
            op.local_matrix(np.zeros((1, 1)), np.array([1]))


class TestEngineSelection:
    def test_pr_falls_back_to_object_on_auto(self):
        comm = SimComm(4)
        op = make_reduction_op(get_algorithm("PR"))
        chunks = [np.arange(1.0, 5.0) for _ in range(4)]
        auto = comm.reduce(chunks, op, "balanced").value
        ref = comm.reduce(chunks, op, "balanced", engine="object").value
        assert _bits_equal(auto, ref)

    def test_pr_vector_engine_raises(self):
        comm = SimComm(4)
        op = make_reduction_op(get_algorithm("PR"))
        chunks = [np.arange(1.0, 5.0) for _ in range(4)]
        with pytest.raises(ValueError, match="vector engine"):
            comm.reduce(chunks, op, "balanced", engine="vector")

    def test_unknown_engine_raises(self):
        comm = SimComm(2)
        op = make_reduction_op(get_algorithm("ST"))
        with pytest.raises(ValueError, match="unknown engine"):
            comm.reduce([np.ones(2)] * 2, op, "balanced", engine="simd")

    def test_supports_vector_flags(self):
        assert make_reduction_op(get_algorithm("K")).supports_vector
        assert not make_reduction_op(get_algorithm("PR")).supports_vector


class TestReduceBatch:
    @pytest.mark.parametrize("code", ["ST", "K", "CP", "DD"])
    def test_batch_equals_reduce_loop(self, code):
        comm = SimComm(6)
        op = make_reduction_op(get_algorithm(code))
        batches = [_ragged_chunks(6, seed=100 + i) for i in range(7)]
        got = comm.reduce_batch(batches, op, "balanced")
        for result, chunks in zip(got, batches):
            ref = comm.reduce(chunks, op, "balanced")
            assert _bits_equal(result.value, ref.value)
            assert result.algorithm_code == ref.algorithm_code
            assert result.simulated_time == ref.simulated_time

    def test_batch_object_fallback_for_pr(self):
        comm = SimComm(3)
        op = make_reduction_op(get_algorithm("PR"))
        batches = [[np.arange(1.0, 6.0)] * 3 for _ in range(3)]
        got = comm.reduce_batch(batches, op, "balanced")
        for result, chunks in zip(got, batches):
            ref = comm.reduce(chunks, op, "balanced", engine="object")
            assert _bits_equal(result.value, ref.value)

    def test_empty_batch(self):
        comm = SimComm(3)
        op = make_reduction_op(get_algorithm("K"))
        assert comm.reduce_batch([], op, "balanced") == []

    def test_batch_checks_rank_count(self):
        comm = SimComm(3)
        op = make_reduction_op(get_algorithm("K"))
        with pytest.raises(ValueError):
            comm.reduce_batch([[np.ones(2)] * 2], op, "balanced")


class TestBatchedProfiling:
    def test_profile_batch_bitwise_equals_sequential(self):
        rng = np.random.default_rng(8)
        batches = [
            [rng.standard_normal(64) * 10.0 ** rng.integers(-6, 7) for _ in range(5)]
            for _ in range(9)
        ]
        got = profile_batch(batches)
        assert got is not None
        reducer = AdaptiveReducer(SimComm(5))
        for sketch, chunks in zip(got, batches):
            ref = reducer.profile(chunks)
            for field in _PROFILE_FIELDS:
                a, b = getattr(sketch, field), getattr(ref, field)
                if field == "n":
                    assert a == b
                else:
                    assert _bits_equal(a, b), field

    def test_profile_batch_ragged_returns_none(self):
        batches = [[np.arange(3.0), np.arange(5.0)]] * 2
        assert profile_batch(batches) is None

    def test_profile_batch_empty_and_zero_rank(self):
        assert profile_batch([]) == []
        sketches = profile_batch([[], []])
        assert sketches is not None and len(sketches) == 2
        assert all(s.n == 0 for s in sketches)

    def test_profile_batch_zero_width_chunks(self):
        batches = [[np.empty(0), np.empty(0)]] * 3
        sketches = profile_batch(batches)
        assert sketches is not None
        ref = StreamProfile()
        for s in sketches:
            for field in _PROFILE_FIELDS:
                assert getattr(s, field) == getattr(ref, field) or (
                    field == "min_abs_nonzero" and np.isinf(s.min_abs_nonzero)
                )


class TestServingPath:
    def test_reduce_many_equals_reduce_loop(self):
        rng = np.random.default_rng(17)
        comm = SimComm(6)
        batches = [
            [rng.random(48) * 10.0 ** int(rng.integers(-3, 4)) for _ in range(6)]
            for _ in range(10)
        ]
        many = AdaptiveReducer(comm, threshold=1e-13).reduce_many(
            batches, tree="balanced"
        )
        solo_reducer = AdaptiveReducer(comm, threshold=1e-13)
        for result, chunks in zip(many, batches):
            ref = solo_reducer.reduce(chunks, tree="balanced")
            assert result.decision.code == ref.decision.code
            assert _bits_equal(result.value, ref.value)

    def test_reduce_many_audit_profiles_are_per_item(self):
        rng = np.random.default_rng(21)
        comm = SimComm(4)
        batches = [[rng.random(32) for _ in range(4)] for _ in range(5)]
        results = AdaptiveReducer(comm).reduce_many(batches, tree="balanced")
        reducer = AdaptiveReducer(comm)
        for result, chunks in zip(results, batches):
            sketch = reducer.profile(chunks)
            assert result.decision.profile.n == sketch.n
            assert _bits_equal(result.decision.profile.max_abs, sketch.max_abs)

    def test_decision_cache_hits_accumulate(self):
        rng = np.random.default_rng(19)
        comm = SimComm(4)
        reducer = AdaptiveReducer(comm, threshold=1e-13)
        batches = [[rng.random(64) for _ in range(4)] for _ in range(8)]
        reducer.reduce_many(batches, tree="balanced")
        info = reducer.decision_cache_info()
        assert info["hits"] + info["misses"] == len(batches)
        assert info["hits"] > 0
        assert info["size"] == info["misses"]
        reducer.clear_decision_cache()
        info = reducer.decision_cache_info()
        assert info == {
            "size": 0,
            "max_size": reducer.cache_size,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "invalidations": 0,
        }

    def test_decision_cache_is_capped_lru(self):
        """Regression: the decision cache must not grow without bound in a
        long-lived serving process — distinct (n, ...) signatures beyond
        ``cache_size`` evict the coldest entry instead of accumulating."""
        comm = SimComm(2)
        reducer = AdaptiveReducer(comm, threshold=1e-13, cache_size=4)
        for n in range(1, 10):  # 9 distinct n => 9 distinct cache keys
            reducer.reduce_many([[np.ones(n)] * 2], tree="balanced")
        info = reducer.decision_cache_info()
        assert info["max_size"] == 4
        assert info["size"] <= 4
        assert info["misses"] == 9
        assert info["evictions"] == info["misses"] - info["size"] == 5

    def test_decision_cache_lru_keeps_recently_used(self):
        comm = SimComm(2)
        reducer = AdaptiveReducer(comm, threshold=1e-13, cache_size=2)

        def stream(n):
            return [[np.ones(n)] * 2]

        reducer.reduce_many(stream(4), tree="balanced")  # miss: {4}
        reducer.reduce_many(stream(8), tree="balanced")  # miss: {4, 8}
        reducer.reduce_many(stream(4), tree="balanced")  # hit: 4 now hottest
        reducer.reduce_many(stream(16), tree="balanced")  # miss: evicts 8, not 4
        reducer.reduce_many(stream(4), tree="balanced")  # still a hit
        info = reducer.decision_cache_info()
        assert info["hits"] == 2
        assert info["evictions"] == 1
        assert info["size"] == 2

    def test_cache_size_validated(self):
        with pytest.raises(ValueError):
            AdaptiveReducer(SimComm(2), cache_size=0)

    def test_reduce_many_empty_stream(self):
        assert AdaptiveReducer(SimComm(3)).reduce_many([]) == []

    def test_reduce_many_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            AdaptiveReducer(SimComm(3)).reduce_many(
                [[np.ones(4)] * 3], threshold=-1.0
            )
