"""Empirical reproducibility certificates."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.generators import generate_sum_set, zero_sum_set
from repro.selection.certify import Certificate, certify


class TestCertify:
    def test_pr_certifies_bitwise_on_hostile_data(self):
        data = zero_sum_set(2048, dr=32, seed=0)
        cert = certify(data, "PR", 0.0, n_trees=40, seed=1)
        assert cert.satisfied and cert.bitwise
        assert cert.worst_abs_spread == 0.0
        assert math.isinf(cert.condition)

    def test_st_fails_on_hostile_data(self):
        data = zero_sum_set(2048, dr=32, seed=2)
        cert = certify(data, "ST", 1e-13, n_trees=40, seed=3)
        assert not cert.satisfied
        assert not cert.bitwise
        assert cert.worst_abs_spread > 0.0

    def test_st_passes_on_benign_data(self):
        data = generate_sum_set(2048, 1.0, 8, seed=4).values
        cert = certify(data, "ST", 1e-12, n_trees=40, seed=5)
        assert cert.satisfied
        assert cert.worst_rel_std <= 1e-12

    def test_certificate_reproducible(self):
        data = generate_sum_set(1024, 1e9, 16, seed=6).values
        a = certify(data, "K", 1e-8, n_trees=30, seed=7)
        b = certify(data, "K", 1e-8, n_trees=30, seed=7)
        assert a == b

    def test_flow_verdict_embedded_and_clean(self):
        """certify() carries the whole-program flow audit: the serving path
        has no unguarded nondeterminism source, statically."""
        data = generate_sum_set(256, 1.0, 8, seed=12).values
        cert = certify(data, "PR", 0.0, n_trees=5, seed=13)
        assert cert.flow_verdict == "clean"
        assert '"flow_verdict": "clean"' in cert.to_json()

    def test_json_roundtrip(self):
        data = zero_sum_set(512, dr=16, seed=8)
        cert = certify(data, "CP", 1e-13, n_trees=20, seed=9)
        loaded = Certificate.from_json(cert.to_json())
        assert loaded == cert
        assert math.isinf(loaded.condition)

    def test_tolerance_ladder_monotone(self):
        """Tightening the tolerance can only flip satisfied True -> False."""
        data = generate_sum_set(2048, 1e9, 16, seed=10).values
        verdicts = [
            certify(data, "ST", t, n_trees=40, seed=11).satisfied
            for t in (1e-3, 1e-6, 1e-9, 1e-12, 1e-15)
        ]
        assert verdicts == sorted(verdicts, reverse=True)

    def test_validation(self):
        data = np.ones(16)
        with pytest.raises(ValueError):
            certify(data, "ST", -1.0)
        with pytest.raises(ValueError):
            certify(data, "ST", 1e-10, n_trees=1)
        with pytest.raises(ValueError):
            certify(np.array([]), "ST", 1e-10)
        with pytest.raises(KeyError):
            certify(data, "NOPE", 1e-10)
