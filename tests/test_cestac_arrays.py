"""Vectorised CESTAC arrays and the stochastic balanced sum."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cestac import (
    StochasticArray,
    cestac_sum,
    random_rounded_add_arrays,
    stochastic_balanced_sum,
)
from repro.util.rng import resolve_rng


class TestRandomRoundedArrays:
    def test_matches_scalar_candidates(self):
        rng = resolve_rng(0)
        a = np.full(2000, 1e16)
        b = np.ones(2000)
        out = random_rounded_add_arrays(a, b, rng)
        s = 1e16 + 1.0
        candidates = {s, np.nextafter(s, np.inf), np.nextafter(s, -np.inf)}
        assert set(np.unique(out).tolist()) <= candidates
        assert len(set(np.unique(out).tolist())) == 2  # both directions hit

    def test_exact_adds_unperturbed(self):
        rng = resolve_rng(1)
        a = np.arange(100, dtype=np.float64)
        out = random_rounded_add_arrays(a, a, rng)
        assert np.array_equal(out, 2 * a)


class TestStochasticArray:
    def test_construction_and_shape(self):
        sa = StochasticArray.from_array(np.ones(5), n_samples=3)
        assert sa.n_samples == 3 and sa.n == 5
        with pytest.raises(ValueError):
            StochasticArray.from_array(np.ones(5), n_samples=1)

    def test_add_and_digits(self):
        rng = resolve_rng(2)
        a = StochasticArray.from_array(np.full(4, 1.0))
        b = StochasticArray.from_array(np.full(4, 2.0**-53))
        out = a
        for _ in range(64):
            out = out.add(b, rng)
        digits = out.significant_digits()
        assert digits.shape == (4,)
        assert np.all(digits >= 0.0) and np.all(digits <= 15.95)

    def test_shape_mismatch(self):
        rng = resolve_rng(3)
        a = StochasticArray.from_array(np.ones(4))
        b = StochasticArray.from_array(np.ones(5))
        with pytest.raises(ValueError):
            a.add(b, rng)


class TestStochasticBalancedSum:
    def test_benign_sum_full_digits(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(1.0, 2.0, 4096)
        value, digits = stochastic_balanced_sum(x, seed=5)
        assert value == pytest.approx(float(np.sum(x)), rel=1e-12)
        assert digits > 12.0

    def test_cancelling_sum_few_digits(self):
        from repro.generators import zero_sum_set

        x = zero_sum_set(4096, dr=32, seed=6)
        _, digits = stochastic_balanced_sum(x, seed=7)
        assert digits < 5.0

    def test_agrees_with_scalar_cestac_verdict(self):
        """Vector and scalar CESTAC must agree on trustworthiness class."""
        rng = np.random.default_rng(8)
        benign = rng.uniform(1.0, 2.0, 512)
        _, d_vec = stochastic_balanced_sum(benign, seed=9)
        d_scalar = cestac_sum(benign, seed=10).significant_digits()
        assert (d_vec > 10) == (d_scalar > 10)

    def test_empty_and_single(self):
        assert stochastic_balanced_sum(np.array([]), seed=0) == (0.0, 15.95)
        v, d = stochastic_balanced_sum(np.array([2.5]), seed=1)
        assert v == 2.5 and d == pytest.approx(15.95)
