"""Reproducible dot products and the GenDot workload generator."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.generators import dot_condition_number, ill_conditioned_dot
from repro.summation import (
    DOT_ALGORITHMS,
    dot_composite,
    dot_exact,
    dot_kahan,
    dot_prerounded,
    dot_standard,
)


def exact_dot_fraction(x: np.ndarray, y: np.ndarray) -> Fraction:
    total = Fraction(0)
    for xi, yi in zip(x.tolist(), y.tolist()):
        total += Fraction(xi) * Fraction(yi)
    return total


class TestDotAlgorithms:
    @pytest.fixture(scope="class")
    def hard(self):
        return ill_conditioned_dot(400, 1e10, seed=2)

    def test_exact_is_correctly_rounded(self, hard):
        exact = exact_dot_fraction(hard.x, hard.y)
        assert dot_exact(hard.x, hard.y) == float(exact)

    def test_accuracy_ordering(self, hard):
        exact = exact_dot_fraction(hard.x, hard.y)

        def err(v: float) -> float:
            return abs(float(Fraction(v) - exact))

        e_st = err(dot_standard(hard.x, hard.y))
        e_k = err(dot_kahan(hard.x, hard.y))
        e_cp = err(dot_composite(hard.x, hard.y))
        e_pr = err(dot_prerounded(hard.x, hard.y))
        assert e_st >= e_k >= e_cp
        assert e_cp <= 1e-10 * max(e_st, 1e-300) or e_cp <= math.ulp(float(exact))
        assert e_pr <= math.ulp(abs(float(exact))) + 1e-300

    def test_pr_dot_order_independent(self, hard):
        ref = dot_prerounded(hard.x, hard.y)
        rng = np.random.default_rng(3)
        for _ in range(5):
            p = rng.permutation(hard.x.size)
            assert dot_prerounded(hard.x[p], hard.y[p]) == ref

    def test_st_dot_order_dependent_on_hard_input(self, hard):
        rng = np.random.default_rng(4)
        vals = {dot_standard(hard.x[p], hard.y[p])
                for p in (rng.permutation(hard.x.size) for _ in range(10))}
        assert len(vals) > 1

    @pytest.mark.parametrize("code", sorted(DOT_ALGORITHMS))
    def test_empty_and_trivial(self, code):
        fn = DOT_ALGORITHMS[code]
        assert fn(np.array([]), np.array([])) == 0.0
        assert fn(np.array([2.0]), np.array([3.0])) == 6.0

    @pytest.mark.parametrize("code", sorted(DOT_ALGORITHMS))
    def test_easy_dot_all_agree(self, code):
        rng = np.random.default_rng(5)
        x = rng.uniform(0.5, 1.0, 100)
        y = rng.uniform(0.5, 1.0, 100)
        exact = exact_dot_fraction(x, y)
        v = DOT_ALGORITHMS[code](x, y)
        assert abs(float(Fraction(v) - exact)) <= 100 * 2.0**-53 * float(exact)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            dot_standard(np.ones(3), np.ones(4))


class TestGenDot:
    @pytest.mark.parametrize("target", [1e2, 1e6, 1e10, 1e14])
    def test_condition_within_two_decades(self, target):
        w = ill_conditioned_dot(300, target, seed=6)
        achieved = dot_condition_number(w.x, w.y)
        assert target / 100 < achieved < target * 100

    def test_validation(self):
        with pytest.raises(ValueError):
            ill_conditioned_dot(4, 100.0)
        with pytest.raises(ValueError):
            ill_conditioned_dot(10, 1.0)
        with pytest.raises(ValueError):
            dot_condition_number(np.ones(2), np.ones(3))

    def test_condition_number_trivia(self):
        assert dot_condition_number(np.array([]), np.array([])) == 1.0
        assert dot_condition_number(np.array([1.0]), np.array([2.0])) == 2.0
        assert math.isinf(
            dot_condition_number(np.array([1.0, 1.0]), np.array([1.0, -1.0]))
        )

    def test_seeded_determinism(self):
        a = ill_conditioned_dot(100, 1e8, seed=7)
        b = ill_conditioned_dot(100, 1e8, seed=7)
        assert np.array_equal(a.x, b.x) and np.array_equal(a.y, b.y)
