"""repro.obs: the runtime metrics layer under test.

Covers the registry contract (counters/gauges/histograms, label identity,
thread-safe updates), disabled-mode no-op semantics, the snapshot /
Prometheus round-trip, the ``repro-metrics`` CLI, and — the acceptance
criterion — an instrumented ``reduce_many`` run whose selection counts,
decision-cache hits and engine-dispatch totals exactly reconcile with the
returned :class:`AdaptiveResult` records.
"""

from __future__ import annotations

import json
import math
import threading
from collections import Counter as TallyCounter

import numpy as np
import pytest

from repro.generators import zero_sum_set
from repro.mpi import SimComm
from repro.obs import DEFAULT_LATENCY_BUCKETS, MetricsRegistry, get_registry
from repro.obs.cli import counter_total, main as metrics_cli, summarize
from repro.selection import AdaptiveReducer


@pytest.fixture
def global_obs():
    """The process-global registry, enabled and clean for one test."""
    reg = get_registry()
    reg.reset()
    reg.enable()
    yield reg
    reg.disable()
    reg.reset()


def _sample_value(snapshot: dict, name: str, **labels) -> "int | None":
    for sample in snapshot["counters"].get(name, []):
        if sample["labels"] == {k: str(v) for k, v in labels.items()}:
            return sample["value"]
    return None


class TestRegistry:
    def test_counter_get_or_create_is_identity(self):
        reg = MetricsRegistry(enabled=True)
        a = reg.counter("x_total", algorithm="K")
        b = reg.counter("x_total", algorithm="K")
        c = reg.counter("x_total", algorithm="CP")
        assert a is b and a is not c
        a.inc()
        a.inc(3)
        assert b.value == 4
        assert c.value == 0

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError):
            reg.counter("x_total").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry(enabled=True)
        g = reg.gauge("depth")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert g.value == pytest.approx(4.0)

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        pairs = h.bucket_counts()
        assert pairs == [(0.1, 1), (1.0, 3), (10.0, 4), (math.inf, 5)]
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)

    def test_histogram_boundary_goes_to_lower_bucket(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("b_seconds", buckets=(1.0, 2.0))
        h.observe(1.0)  # le is inclusive, Prometheus-style
        assert h.bucket_counts()[0] == (1.0, 1)

    def test_histogram_rejects_bad_buckets(self):
        reg = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("h2", buckets=(1.0, 1.0))

    def test_default_buckets_strictly_increasing(self):
        assert all(
            b2 > b1
            for b1, b2 in zip(DEFAULT_LATENCY_BUCKETS, DEFAULT_LATENCY_BUCKETS[1:])
        )

    def test_reset_drops_metrics_keeps_flag(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("x_total").inc()
        reg.reset()
        assert reg.enabled
        assert reg.snapshot()["counters"] == {}


class TestConcurrency:
    def test_counter_exact_under_threads(self):
        reg = MetricsRegistry(enabled=True)
        counter = reg.counter("hits_total")
        n_threads, per_thread = 8, 5000

        def worker():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread

    def test_histogram_exact_under_threads(self):
        reg = MetricsRegistry(enabled=True)
        hist = reg.histogram("lat_seconds", buckets=(1e-3, 1.0))
        n_threads, per_thread = 8, 2000

        def worker(i):
            for j in range(per_thread):
                hist.observe(1e-4 if (i + j) % 2 else 2.0)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert hist.count == total
        pairs = dict(hist.bucket_counts())
        assert pairs[math.inf] == total
        assert pairs[1e-3] == total // 2

    def test_racing_registration_yields_one_metric(self):
        reg = MetricsRegistry(enabled=True)
        seen = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            seen.append(reg.counter("raced_total"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(m is seen[0] for m in seen)


class TestDisabledMode:
    def test_disabled_instrumented_run_records_nothing(self):
        """The global registry defaults to disabled: a full serving-path run
        must leave the snapshot empty (the no-op guard contract)."""
        reg = get_registry()
        reg.reset()
        assert not reg.enabled
        rng = np.random.default_rng(3)
        comm = SimComm(4)
        reducer = AdaptiveReducer(comm, threshold=1e-13)
        batches = [[rng.random(32) for _ in range(4)] for _ in range(6)]
        reducer.reduce_many(batches, tree="balanced")
        reducer.reduce(batches[0], tree="balanced")
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}

    def test_enable_disable_toggles_recording(self, global_obs):
        comm = SimComm(2)
        reducer = AdaptiveReducer(comm)
        reducer.reduce([np.ones(8), np.ones(8)], tree="balanced")
        before = counter_total(
            global_obs.snapshot(), "repro_selector_selections_total"
        )
        assert before == 1
        global_obs.disable()
        reducer.reduce([np.ones(8), np.ones(8)], tree="balanced")
        after = counter_total(
            global_obs.snapshot(), "repro_selector_selections_total"
        )
        assert after == before


class TestExport:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry(enabled=True)
        reg.counter("repro_x_total", algorithm="K").inc(4)
        reg.counter("repro_x_total", algorithm="CP").inc(1)
        reg.gauge("repro_depth").set(3.5)
        h = reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        return reg

    def test_snapshot_is_json_round_trippable(self):
        reg = self._populated()
        snap = json.loads(reg.to_json())
        assert snap == reg.snapshot()
        assert _sample_value(snap, "repro_x_total", algorithm="K") == 4
        hist = snap["histograms"]["repro_lat_seconds"][0]
        assert hist["count"] == 2
        assert hist["buckets"][-1] == ["+Inf", 2]

    def test_prometheus_text_shape(self):
        text = self._populated().render_prometheus()
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{algorithm="K"} 4' in text
        assert "# TYPE repro_depth gauge" in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_count 2" in text

    def test_snapshot_prometheus_round_trip(self):
        """snapshot -> CLI reconstruction == the registry's own rendering."""
        from repro.obs.cli import _render_prometheus_from_snapshot

        reg = self._populated()
        assert _render_prometheus_from_snapshot(reg.snapshot()) == (
            reg.render_prometheus()
        )


class TestPrometheusEscaping:
    """Label values with exposition-format metacharacters must escape —
    a raw ``"``, ``\\`` or newline in a label used to break every scraper
    reading the daemon's ``/metrics``."""

    HOSTILE = 'she said "hi"\nC:\\temp\\x'

    def test_hostile_label_values_escape(self):
        from repro.obs.registry import parse_prometheus_text

        reg = MetricsRegistry(enabled=True)
        reg.counter("repro_evil_total", path=self.HOSTILE).inc(2)
        text = reg.render_prometheus()
        # one sample line per metric line: the newline did NOT split the line
        body_lines = [ln for ln in text.splitlines() if not ln.startswith("#")]
        assert len(body_lines) == 1
        assert '\\n' in body_lines[0] and '\\"' in body_lines[0]
        parsed = parse_prometheus_text(text)
        (sample,) = parsed["samples"]
        assert sample["labels"]["path"] == self.HOSTILE  # round-trips exactly
        assert sample["value"] == 2

    def test_hostile_labels_on_histograms(self):
        from repro.obs.registry import parse_prometheus_text

        reg = MetricsRegistry(enabled=True)
        h = reg.histogram(
            "repro_evil_seconds", buckets=(0.1,), who='a"b\\c'
        )
        h.observe(0.05)
        parsed = parse_prometheus_text(reg.render_prometheus())
        buckets = [
            s for s in parsed["samples"]
            if s["name"] == "repro_evil_seconds_bucket"
        ]
        assert {s["labels"]["who"] for s in buckets} == {'a"b\\c'}
        assert {s["labels"]["le"] for s in buckets} == {"0.1", "+Inf"}

    def test_le_bounds_render_shortest_repr(self):
        reg = MetricsRegistry(enabled=True)
        reg.histogram("repro_le_seconds", buckets=(1e-05, 0.1, 2.5)).observe(0)
        text = reg.render_prometheus()
        # repr-stable shortest floats: 0.1 stays "0.1", 1e-05 stays "1e-05"
        assert 'le="0.1"' in text
        assert 'le="1e-05"' in text
        assert 'le="2.5"' in text
        assert 'le="+Inf"' in text

    def test_integral_counter_values_render_as_ints(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("repro_int_total").inc(7)
        assert "repro_int_total 7\n" in reg.render_prometheus()

    def test_parser_rejects_malformed_lines(self):
        from repro.obs.registry import parse_prometheus_text

        for bad in (
            "repro_x_total",  # no value
            'repro_x_total{unterminated="v 1',
            "repro_x_total notanumber",
        ):
            with pytest.raises(ValueError):
                parse_prometheus_text(bad)

    def test_parser_reads_special_values(self):
        from repro.obs.registry import parse_prometheus_text

        text = "a 1\nb +Inf\nc -Inf\nd NaN\n"
        samples = {
            s["name"]: s["value"]
            for s in parse_prometheus_text(text)["samples"]
        }
        assert samples["a"] == 1
        assert samples["b"] == math.inf
        assert samples["c"] == -math.inf
        assert math.isnan(samples["d"])

    def test_full_registry_render_round_trips(self):
        from repro.obs.registry import parse_prometheus_text

        reg = MetricsRegistry(enabled=True)
        reg.counter("repro_a_total", algo="K", note='x"y\\z\nw').inc(3)
        reg.gauge("repro_depth", shard="0").set(2.5)
        h = reg.histogram("repro_lat_seconds", buckets=(0.001, 0.1))
        h.observe(0.05)
        h.observe(0.2)
        parsed = parse_prometheus_text(reg.render_prometheus())
        assert parsed["types"] == {
            "repro_a_total": "counter",
            "repro_depth": "gauge",
            "repro_lat_seconds": "histogram",
        }
        by = {
            (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
            for s in parsed["samples"]
        }
        assert by[
            ("repro_a_total", (("algo", "K"), ("note", 'x"y\\z\nw')))
        ] == 3
        assert by[("repro_depth", (("shard", "0"),))] == 2.5
        assert by[("repro_lat_seconds_count", ())] == 2


class TestCli:
    def _write_snapshot(self, tmp_path) -> str:
        reg = MetricsRegistry(enabled=True)
        reg.counter("repro_selector_selections_total", algorithm="ST").inc(7)
        reg.histogram("repro_selector_reduce_seconds", buckets=(0.1,)).observe(0.01)
        path = tmp_path / "metrics.json"
        path.write_text(reg.to_json())
        return str(path)

    def test_summary_lists_metrics(self, tmp_path, capsys):
        path = self._write_snapshot(tmp_path)
        assert metrics_cli([path]) == 0
        out = capsys.readouterr().out
        assert "repro_selector_selections_total{algorithm=ST} = 7" in out
        assert "repro_selector_reduce_seconds" in out

    def test_assert_nonzero_gate(self, tmp_path, capsys):
        path = self._write_snapshot(tmp_path)
        assert (
            metrics_cli([path, "--assert-nonzero", "repro_selector_selections_total"])
            == 0
        )
        assert metrics_cli([path, "--assert-nonzero", "repro_absent_total"]) == 1

    def test_prometheus_flag(self, tmp_path, capsys):
        path = self._write_snapshot(tmp_path)
        assert metrics_cli([path, "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert 'repro_selector_selections_total{algorithm="ST"} 7' in out

    def test_unreadable_snapshot_exits_2(self, tmp_path):
        assert metrics_cli([str(tmp_path / "missing.json")]) == 2

    def test_summarize_empty(self):
        assert summarize({}) == "(empty snapshot)"


class TestServingReconciliation:
    """Acceptance: an instrumented ``reduce_many`` stream's snapshot must
    exactly reconcile with the returned ``AdaptiveResult`` records and
    ``decision_cache_info()``."""

    def test_reduce_many_counts_reconcile(self, global_obs):
        rng = np.random.default_rng(42)
        comm = SimComm(6)
        reducer = AdaptiveReducer(comm, threshold=1e-13)
        # a mixed stream: easy positive sets (cheap algorithms) and exact
        # zero-sum sets (k = inf => the robust end, incl. context-needing PR)
        batches = []
        for i in range(8):
            batches.append([rng.random(60) for _ in range(6)])
        for i in range(4):
            batches.append(list(comm.scatter_array(zero_sum_set(360, 24, seed=i))))
        results = reducer.reduce_many(batches, tree="balanced")
        snap = global_obs.snapshot()

        # selection counts per algorithm == the audited decision records
        decided = TallyCounter(r.decision.code for r in results)
        for code, expected in decided.items():
            assert (
                _sample_value(snap, "repro_selector_selections_total", algorithm=code)
                == expected
            ), (code, snap["counters"])
        assert counter_total(snap, "repro_selector_selections_total") == len(results)

        # decision-cache traffic == decision_cache_info()
        info = reducer.decision_cache_info()
        assert info["hits"] + info["misses"] == len(results)
        assert (
            counter_total(snap, "repro_selector_decision_cache_hits_total")
            == info["hits"]
        )
        assert (
            counter_total(snap, "repro_selector_decision_cache_misses_total")
            == info["misses"]
        )
        assert (
            counter_total(snap, "repro_selector_decision_cache_evictions_total")
            == info["evictions"]
        )

        # engine dispatch totals == one dispatch per returned collective
        assert counter_total(snap, "repro_comm_dispatch_total") == len(results)

        # the uniform-width stream rode the batched profiling path
        assert (
            _sample_value(snap, "repro_profile_items_total", path="batched")
            == len(results)
        )

        # phase latency histograms saw the run
        assert counter_total(snap, "repro_selector_profile_seconds") >= 1
        assert counter_total(snap, "repro_selector_select_seconds") >= 1
        assert counter_total(snap, "repro_selector_reduce_seconds") >= 1

    def test_ragged_stream_counts_fallback(self, global_obs):
        rng = np.random.default_rng(5)
        comm = SimComm(3)
        reducer = AdaptiveReducer(comm, threshold=1e-13)
        batches = [
            [rng.random(16), rng.random(16), rng.random(16)],
            [rng.random(8), rng.random(8), rng.random(8)],  # ragged width
        ]
        reducer.reduce_many(batches, tree="balanced")
        snap = global_obs.snapshot()
        assert (
            _sample_value(snap, "repro_profile_batch_total", path="ragged_fallback")
            == 1
        )
        assert counter_total(snap, "repro_comm_dispatch_total") == 2

    def test_single_reduce_instruments_histograms(self, global_obs):
        comm = SimComm(4)
        reducer = AdaptiveReducer(comm)
        res = reducer.reduce(comm.scatter_array(np.ones(400)), tree="balanced")
        snap = global_obs.snapshot()
        assert (
            _sample_value(
                snap, "repro_selector_selections_total", algorithm=res.decision.code
            )
            == 1
        )
        hists = snap["histograms"]
        for name in (
            "repro_selector_profile_seconds",
            "repro_selector_select_seconds",
            "repro_selector_reduce_seconds",
        ):
            assert hists[name][0]["count"] == 1, name
