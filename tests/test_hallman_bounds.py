"""Property tests for the Hallman–Ipsen analytic bounds (selection fast path).

The contract the bound tier rests on: for every algorithm family, every
input-data regime and every supported precision,
:func:`repro.metrics.bounds.summation_error_bound` is a *valid* forward-error
bound — the observed error of a real low-precision summation never exceeds
it.  Probabilistic bounds are validated at their stated confidence over many
seeds.  Reference summations run in the *native* dtype (fp64/fp32/fp16), so
these tests exercise the precision-aware forms where ``n·u`` is not small.
"""

import math

import numpy as np
import pytest

from repro.fp.properties import UNIT_ROUNDOFF, unit_roundoff
from repro.metrics.bounds import (
    BOUNDED_CODES,
    EXACT_VARIABILITY_CODES,
    confidence_lambda,
    hallman_ipsen_deterministic,
    hallman_ipsen_probabilistic,
    height_epsilon,
    summation_error_bound,
)

# ---------------------------------------------------------------------------
# reference summations in the native dtype


def recursive_sum(values, dtype):
    """Sequential left-to-right summation (tree height n-1)."""
    acc = dtype(0.0)
    for v in values:
        acc = dtype(acc + dtype(v))
    return float(acc)


def pairwise_sum(values, dtype):
    """Balanced halving tree (height ceil(log2 n) <= n-1)."""
    a = np.asarray(values, dtype=dtype)
    if a.size == 0:
        return 0.0
    while a.size > 1:
        if a.size % 2:
            a = np.concatenate([a, np.zeros(1, dtype=dtype)])
        a = a[0::2] + a[1::2]
    return float(a[0])


def kahan_sum(values, dtype):
    """Classic compensated summation, every operation rounded to dtype."""
    s = dtype(0.0)
    c = dtype(0.0)
    for v in values:
        y = dtype(dtype(v) - c)
        t = dtype(s + y)
        c = dtype(dtype(t - s) - y)
        s = t
    return float(s)


def sum2_sum(values, dtype):
    """Ogita–Rump–Oishi Sum2: two_sum error recovery, one correction pass."""
    s = dtype(0.0)
    err = dtype(0.0)
    for v in values:
        x = dtype(v)
        t = dtype(s + x)
        bp = dtype(t - s)
        e = dtype(dtype(s - dtype(t - bp)) + dtype(x - bp))
        err = dtype(err + e)
        s = t
    return float(dtype(s + err))


REFERENCE_SUMS = {
    "ST": recursive_sum,
    "PW": pairwise_sum,
    "K": kahan_sum,
    "CP": sum2_sum,
}

# ---------------------------------------------------------------------------
# data-regime generators (values representable in every tested dtype after
# rounding — the bound covers *summation* error, so the exact reference is
# math.fsum over the rounded inputs)


def gen_well_conditioned(rng, n):
    return rng.random(n)


def gen_ill_conditioned(rng, n):
    return rng.standard_normal(n)


def gen_huge_cancellation(rng, n):
    half = rng.random(n // 2) + 1.0
    data = np.concatenate([half, -half, rng.random(n - 2 * (n // 2)) * 1e-3])
    rng.shuffle(data)
    return data


def gen_denormal_heavy(rng, n, dtype):
    tiny = float(np.finfo(dtype).tiny)
    return rng.random(n) * 2.0 * tiny - tiny  # straddles the denormal range


GENERATORS = {
    "well_conditioned": lambda rng, n, dtype: gen_well_conditioned(rng, n),
    "ill_conditioned": lambda rng, n, dtype: gen_ill_conditioned(rng, n),
    "huge_cancellation": lambda rng, n, dtype: gen_huge_cancellation(rng, n),
    "denormal_heavy": gen_denormal_heavy,
}

DTYPES = [np.float64, np.float32, np.float16]


class TestDeterministicBoundValidity:
    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: np.dtype(d).name)
    @pytest.mark.parametrize("generator", sorted(GENERATORS))
    @pytest.mark.parametrize("code", sorted(REFERENCE_SUMS))
    def test_bound_dominates_observed_error(self, code, generator, dtype):
        """bound >= |fl(Σx) - Σx| for native-dtype references, every regime."""
        u = unit_roundoff(dtype)
        n = 200
        for seed in range(3):
            rng = np.random.default_rng(seed)
            raw = GENERATORS[generator](rng, n, dtype)
            vals = np.asarray(raw, dtype=dtype)
            exact = math.fsum(float(v) for v in vals)
            abs_sum = math.fsum(abs(float(v)) for v in vals)
            observed = abs(REFERENCE_SUMS[code](vals, dtype) - exact)
            bound = summation_error_bound(code, n, abs_sum, abs(exact), u=u)
            assert observed <= bound, (
                f"{code}/{generator}/{np.dtype(dtype).name} seed {seed}: "
                f"observed {observed:.3e} > bound {bound:.3e}"
            )

    def test_exact_codes_bound_zero(self):
        for code in sorted(EXACT_VARIABILITY_CODES):
            assert summation_error_bound(code, 10_000, 1e6, 1.0) == 0.0

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError):
            summation_error_bound("??", 10, 1.0)

    def test_bounded_codes_cover_reference_algorithms(self):
        assert set(REFERENCE_SUMS) <= BOUNDED_CODES
        assert EXACT_VARIABILITY_CODES <= BOUNDED_CODES


class TestProbabilisticBound:
    def test_validated_at_stated_confidence_over_many_seeds(self):
        """Violation rate of the probabilistic ST bound stays below 1-c."""
        confidence = 0.99
        n = 2048
        seeds = 300
        violations = 0
        for seed in range(seeds):
            rng = np.random.default_rng(seed)
            vals = np.asarray(rng.standard_normal(n), dtype=np.float32)  # repro: allow[FP005] -- fp32 reference sums validate the probabilistic bound at its own roundoff
            exact = math.fsum(float(v) for v in vals)
            abs_sum = math.fsum(abs(float(v)) for v in vals)
            observed = abs(recursive_sum(vals, np.float32) - exact)
            bound = summation_error_bound(
                "ST", n, abs_sum, abs(exact),
                u=unit_roundoff(np.float32), confidence=confidence,
            )
            if observed > bound:
                violations += 1
        # allow the binomial slack on top of the stated failure budget
        budget = (1 - confidence) * seeds
        assert violations <= budget + 3 * math.sqrt(budget) + 1

    def test_probabilistic_never_exceeds_deterministic(self):
        for n in (10, 1_000, 100_000):
            det = hallman_ipsen_deterministic(1.0, n)
            prob = hallman_ipsen_probabilistic(1.0, n, confidence=0.999999)
            assert prob <= det

    def test_sqrt_scaling(self):
        """The probabilistic form scales ~sqrt(h), the deterministic ~h."""
        b1 = hallman_ipsen_probabilistic(1.0, 10_000, confidence=0.99)
        b2 = hallman_ipsen_probabilistic(1.0, 40_000, confidence=0.99)
        assert b2 / b1 == pytest.approx(2.0, rel=0.05)

    def test_confidence_monotone(self):
        loose = summation_error_bound("ST", 4096, 1.0, confidence=0.9)
        tight = summation_error_bound("ST", 4096, 1.0, confidence=0.999999)
        certain = summation_error_bound("ST", 4096, 1.0, confidence=1.0)
        assert loose <= tight <= certain

    def test_confidence_lambda_edges(self):
        assert math.isinf(confidence_lambda(1.0))
        assert confidence_lambda(0.99) == pytest.approx(
            math.sqrt(2 * math.log(2 / 0.01))
        )
        for bad in (0.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                confidence_lambda(bad)


class TestPrecisionAwareness:
    def test_bounds_grow_with_unit_roundoff(self):
        for code in ("ST", "PW", "K"):
            b64 = summation_error_bound(code, 500, 1.0, u=unit_roundoff(np.float64))
            b32 = summation_error_bound(code, 500, 1.0, u=unit_roundoff(np.float32))
            b16 = summation_error_bound(code, 500, 1.0, u=unit_roundoff(np.float16))
            assert b64 < b32 < b16

    def test_cp_bound_inconclusive_when_nu_large(self):
        """The doubled-precision bound's gamma factor is undefined for
        n·u >= 1: fp16 at n=5000 must report inf (inconclusive), not a
        bogus finite certificate."""
        u16 = unit_roundoff(np.float16)
        assert (5000 - 1) * u16 >= 1.0
        assert math.isinf(summation_error_bound("CP", 5000, 1.0, u=u16))
        # and stays finite where the classical analysis applies
        assert math.isfinite(summation_error_bound("CP", 500, 1.0, u=u16))

    def test_height_epsilon_valid_for_large_nu(self):
        """(1+u)^h - 1 stays finite and positive even when h·u >> 1 — the
        arXiv 2203.15928 move that makes fp16 a supported axis."""
        u16 = unit_roundoff(np.float16)
        eps = height_epsilon(10_000, u16)
        assert math.isfinite(eps) and eps > 10_000 * u16

    def test_height_epsilon_matches_first_order(self):
        assert height_epsilon(100, UNIT_ROUNDOFF) == pytest.approx(
            100 * UNIT_ROUNDOFF, rel=1e-10
        )

    def test_unit_roundoff_values(self):
        assert unit_roundoff(np.float64) == 2.0**-53
        assert unit_roundoff(np.float32) == 2.0**-24
        assert unit_roundoff(np.float16) == 2.0**-11
        # non-float dtypes and sub-double claims floor at binary64
        assert unit_roundoff(np.int64) == 2.0**-53

    def test_array_broadcasting(self):
        n = np.array([10, 100, 1000], dtype=np.float64)
        bounds = summation_error_bound("ST", n, 1.0, u=UNIT_ROUNDOFF)
        assert bounds.shape == (3,)
        assert np.all(np.diff(bounds) > 0)
