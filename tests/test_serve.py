"""repro.serve under test: protocol parsing, the micro-batcher's queue
semantics (backpressure, deadlines, drain), every daemon endpoint against
bitwise serial recomputation, threaded-client concurrency with metric and
decision-cache reconciliation, and the SIGTERM lifecycle (exit 0, zero
leaked ``/dev/shm`` segments) in a real subprocess.
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.mpi import SimComm
from repro.obs import get_registry
from repro.obs.registry import parse_prometheus_text
from repro.selection import AdaptiveReducer
from repro.serve import (
    BatcherClosing,
    BatcherFull,
    DeadlineExceeded,
    MicroBatcher,
    ReproServeDaemon,
)
from repro.serve.protocol import (
    HttpError,
    HttpRequest,
    KeepAliveClient,
    decode_values,
    encode_values,
    header_scaffold,
    http_request,
    read_request,
    render_response,
    render_response_into,
)
from repro.trees.evaluate import evaluate_ensemble
from repro.summation.registry import get_algorithm


@pytest.fixture
def global_obs():
    """The process-global registry, enabled and clean for one test."""
    reg = get_registry()
    reg.reset()
    reg.enable()
    yield reg
    reg.disable()
    reg.reset()


def _counter_sum(reg, name: str, **labels) -> int:
    """Sum a counter over all label sets matching the given subset."""
    total = 0
    for sample in reg.snapshot()["counters"].get(name, []):
        if all(sample["labels"].get(k) == v for k, v in labels.items()):
            total += sample["value"]
    return total


# ---------------------------------------------------------------------------
# protocol layer
# ---------------------------------------------------------------------------


def _feed_reader(raw: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(raw)
    reader.feed_eof()
    return reader


def _parse(raw: bytes, **kw) -> "HttpRequest | None":
    async def run():
        return await read_request(_feed_reader(raw), **kw)

    return asyncio.run(run())


class TestProtocol:
    def test_parses_post_with_body(self):
        req = _parse(
            b"POST /v1/reduce HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 4\r\n\r\nabcd"
        )
        assert req.method == "POST"
        assert req.path == "/v1/reduce"
        assert req.body == b"abcd"
        assert req.keep_alive  # HTTP/1.1 default

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_connection_close_and_http10(self):
        req = _parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not req.keep_alive
        req = _parse(b"GET / HTTP/1.0\r\n\r\n")
        assert not req.keep_alive
        req = _parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert req.keep_alive

    def test_chunked_body_411(self):
        with pytest.raises(HttpError) as exc:
            _parse(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert exc.value.status == 411

    def test_post_without_length_411(self):
        with pytest.raises(HttpError) as exc:
            _parse(b"POST / HTTP/1.1\r\n\r\n")
        assert exc.value.status == 411

    def test_body_cap_413(self):
        with pytest.raises(HttpError) as exc:
            _parse(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100,
                max_body=10,
            )
        assert exc.value.status == 413

    def test_malformed_request_line_400(self):
        with pytest.raises(HttpError) as exc:
            _parse(b"NONSENSE\r\n\r\n")
        assert exc.value.status == 400

    def test_truncated_body_400(self):
        with pytest.raises(HttpError) as exc:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert exc.value.status == 400

    def test_json_method_rejects_junk(self):
        req = _parse(
            b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\nnot"
        )
        with pytest.raises(HttpError) as exc:
            req.json()
        assert exc.value.status == 400

    def test_values_b64_round_trip_is_bitwise(self, rng):
        vals = rng.normal(size=257) * 10.0 ** rng.integers(-30, 30, size=257)
        out = decode_values({"values_b64": encode_values(vals)})
        assert out.dtype == np.float64
        assert np.array_equal(
            out.view(np.uint64), vals.view(np.uint64)
        )  # bitwise, not approx

    def test_values_json_form(self):
        out = decode_values({"values": [1.5, -2.25, 3.0]})
        assert out.tolist() == [1.5, -2.25, 3.0]

    def test_decode_rejects_bad_payloads(self):
        for obj in (
            [],
            {},
            {"values": "nope"},
            {"values_b64": "!!!not-base64!!!"},
            {"values_b64": base64.b64encode(b"12345").decode()},  # not %8
        ):
            with pytest.raises(HttpError) as exc:
                decode_values(obj)
            assert exc.value.status == 400

    def test_decode_values_b64_is_no_copy(self, rng):
        # regression: decode_values used an unconditional .astype that
        # copied every b64 payload; the fast path must hand back a view
        # over the decoded bytes
        vals = rng.normal(size=513)
        out = decode_values({"values_b64": encode_values(vals)})
        assert out.base is not None  # a view, not an owning copy
        assert not out.flags.writeable  # read-only over the bytes object
        assert np.shares_memory(out, np.frombuffer(out.base, dtype="<f8"))
        assert np.array_equal(out.view(np.uint64), vals.view(np.uint64))


# ---------------------------------------------------------------------------
# zero-copy protocol plumbing (reusable buffers, scaffolds, keep-alive client)
# ---------------------------------------------------------------------------


def _parse_raw_response(raw) -> "tuple[str, dict, bytes]":
    head, _, body = bytes(raw).partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    headers: "dict[str, str]" = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return lines[0], headers, body


class TestZeroCopyProtocol:
    def test_read_request_into_buffer_is_view(self):
        async def run():
            buf = bytearray()
            req = await read_request(
                _feed_reader(
                    b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
                ),
                buffer=buf,
            )
            assert isinstance(req.body, memoryview)
            assert bytes(req.body) == b"abcd"
            assert np.shares_memory(
                np.frombuffer(req.body, dtype=np.uint8),
                np.frombuffer(buf, dtype=np.uint8),
            )
            req.release()
            # after release the same buffer serves (and grows for) the
            # next request
            req2 = await read_request(
                _feed_reader(
                    b"POST / HTTP/1.1\r\nContent-Length: 8\r\n\r\nabcdefgh"
                ),
                buffer=buf,
            )
            assert bytes(req2.body) == b"abcdefgh"
            req2.release()
            assert len(buf) == 8  # grown once, monotonically

        asyncio.run(run())

    def test_unreleased_body_blocks_buffer_growth(self):
        async def run():
            buf = bytearray()
            req = await read_request(
                _feed_reader(
                    b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
                ),
                buffer=buf,
            )
            # the loud invariant: growing under a live export must fail
            # rather than silently copying
            with pytest.raises(BufferError):
                await read_request(
                    _feed_reader(
                        b"POST / HTTP/1.1\r\nContent-Length: 64\r\n\r\n"
                        + b"x" * 64
                    ),
                    buffer=buf,
                )
            req.release()

        asyncio.run(run())

    def test_header_scaffold_is_cached(self):
        a = header_scaffold(200, "application/json", True)
        b = header_scaffold(200, "application/json", True)
        assert a is b
        assert a.startswith(b"HTTP/1.1 200 OK\r\n")
        assert a.endswith(b"Content-Length: ")

    def test_render_into_matches_render(self):
        scratch = bytearray()
        cases = [
            (200, b'{"x":1}', "application/json", True, None),
            (429, b'{"error":"busy"}', "application/json", True,
             {"Retry-After": "1"}),
            (400, b"", "application/json", False, None),
            (200, b"\x00\x01\x02payload", "application/x-repro-frame",
             True, None),
        ]
        for status, body, ct, keep, extra in cases:
            out = render_response_into(
                scratch, status, body, content_type=ct, keep_alive=keep,
                extra_headers=extra,
            )
            ref = render_response(
                status, body, content_type=ct, keep_alive=keep,
                extra_headers=extra,
            )
            # header order differs between the two renderers; compare
            # status line, header set, and body
            assert _parse_raw_response(out) == _parse_raw_response(ref)
            out.release()  # reuse the same scratch for the next case

    def test_render_into_requires_release(self):
        scratch = bytearray()
        out = render_response_into(scratch, 200, b"{}")
        with pytest.raises(BufferError):
            render_response_into(scratch, 200, b"{}")
        out.release()
        out2 = render_response_into(scratch, 200, b'{"ok":1}')
        assert bytes(out2).endswith(b'{"ok":1}')
        out2.release()


class TestKeepAliveClient:
    def test_buffer_reuse_across_requests(self):
        async def run():
            async def handler(reader, writer):
                conn_buf = bytearray()
                while True:
                    req = await read_request(reader, buffer=conn_buf)
                    if req is None:
                        break
                    body = bytes(req.body) if len(req.body) else b"{}"
                    req.release()
                    writer.write(render_response(200, body))
                    await writer.drain()
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                async with KeepAliveClient("127.0.0.1", port) as client:
                    r1 = await client.request("POST", "/echo", b'{"a":1}')
                    assert isinstance(r1.body, memoryview)
                    assert r1.json() == {"a": 1}
                    buf = client._buf
                    r2 = await client.request("POST", "/echo", b'{"b":2}')
                    assert client._buf is buf  # same reusable buffer
                    assert r2.json() == {"b": 2}
                    # the previous response's view was recycled by the
                    # second request — that is the documented contract
                    with pytest.raises(ValueError):
                        bytes(r1.body)
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(run())

    def test_server_close_raises_connection_error(self):
        async def run():
            async def handler(reader, writer):
                await reader.read(64)
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                client = KeepAliveClient("127.0.0.1", port)
                with pytest.raises((ConnectionError, OSError)):
                    await client.request("GET", "/")
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(run())


# ---------------------------------------------------------------------------
# micro-batcher
# ---------------------------------------------------------------------------


class TestMicroBatcher:
    def test_validates_knobs(self):
        fn = lambda items, t: items  # noqa: E731
        with pytest.raises(ValueError):
            MicroBatcher(fn, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(fn, max_linger_s=-1)
        with pytest.raises(ValueError):
            MicroBatcher(fn, queue_size=0)

    def test_coalesces_concurrent_submits_into_one_call(self):
        calls = []

        def reduce_fn(items, threshold):
            calls.append(list(items))
            return [x * 10 for x in items]

        async def run():
            b = MicroBatcher(reduce_fn, max_batch=64, max_linger_s=0.05)
            b.start()
            futs = [b.submit(i) for i in range(8)]
            results = await asyncio.gather(*futs)
            await b.drain()
            return results

        results = asyncio.run(run())
        assert results == [i * 10 for i in range(8)]
        assert len(calls) == 1  # one tick, one reduce_many call
        assert calls[0] == list(range(8))

    def test_max_batch_splits_ticks(self):
        calls = []

        def reduce_fn(items, threshold):
            calls.append(len(items))
            return items

        async def run():
            b = MicroBatcher(reduce_fn, max_batch=3, max_linger_s=0.05)
            b.start()
            futs = [b.submit(i) for i in range(7)]
            await asyncio.gather(*futs)
            await b.drain()

        asyncio.run(run())
        assert sum(calls) == 7
        assert max(calls) <= 3

    def test_threshold_groups_within_a_tick(self):
        calls = []

        def reduce_fn(items, threshold):
            calls.append((threshold, list(items)))
            return items

        async def run():
            b = MicroBatcher(reduce_fn, max_batch=64, max_linger_s=0.05)
            b.start()
            futs = [
                b.submit("a", threshold=1e-10),
                b.submit("b", threshold=1e-2),
                b.submit("c", threshold=1e-10),
            ]
            await asyncio.gather(*futs)
            await b.drain()

        asyncio.run(run())
        assert sorted(t for t, _ in calls) == [1e-10, 1e-2]
        groups = {t: items for t, items in calls}
        assert groups[1e-10] == ["a", "c"]
        assert groups[1e-2] == ["b"]

    def test_queue_full_raises_and_nothing_dropped(self):
        release = threading.Event()

        def reduce_fn(items, threshold):
            release.wait(10)
            return items

        async def run():
            b = MicroBatcher(reduce_fn, max_batch=1, max_linger_s=0.0,
                             queue_size=2)
            b.start()
            first = b.submit("in-flight")
            await asyncio.sleep(0.05)  # batcher now blocked in the executor
            second = b.submit("q1")
            third = b.submit("q2")
            with pytest.raises(BatcherFull):
                b.submit("overflow")
            with pytest.raises(BatcherFull):
                b.submit_many(["x", "y", "z"])
            release.set()
            results = await asyncio.gather(first, second, third)
            await b.drain()
            return results

        assert asyncio.run(run()) == ["in-flight", "q1", "q2"]

    def test_submit_after_drain_raises_closing(self):
        async def run():
            b = MicroBatcher(lambda items, t: items, max_linger_s=0.0)
            b.start()
            await b.drain()  # zero-request drain is legal
            with pytest.raises(BatcherClosing):
                b.submit("late")

        asyncio.run(run())

    def test_drain_flushes_accepted_work(self):
        def reduce_fn(items, threshold):
            return [x + 1 for x in items]

        async def run():
            b = MicroBatcher(reduce_fn, max_batch=2, max_linger_s=5.0)
            b.start()
            futs = [b.submit(i) for i in range(5)]
            drainer = asyncio.ensure_future(b.drain())
            results = await asyncio.gather(*futs)
            await drainer
            return results

        # the 5s linger never elapses: drain forces the flush immediately
        assert asyncio.run(run()) == [1, 2, 3, 4, 5]

    def test_deadline_expired_in_queue_is_504_not_computed(self, global_obs):
        computed = []
        release = threading.Event()

        def reduce_fn(items, threshold):
            computed.extend(items)
            release.wait(10)
            return items

        async def run():
            b = MicroBatcher(reduce_fn, max_batch=1, max_linger_s=0.0)
            b.start()
            blocker = b.submit("blocker")
            await asyncio.sleep(0.05)
            doomed = b.submit("doomed", deadline_s=0.01)
            await asyncio.sleep(0.1)  # deadline passes while queued
            release.set()
            with pytest.raises(DeadlineExceeded):
                await doomed
            assert await blocker == "blocker"
            await b.drain()

        asyncio.run(run())
        assert "doomed" not in computed  # shed, not computed
        assert _counter_sum(
            global_obs, "repro_serve_deadline_misses_total"
        ) == 1

    def test_all_expired_tick_runs_empty(self):
        """A tick whose every request expired must not call reduce_fn with
        garbage nor wedge the drain task (the empty-batch path)."""
        calls = []

        def reduce_fn(items, threshold):
            calls.append(list(items))
            return items

        async def run():
            b = MicroBatcher(reduce_fn, max_batch=4, max_linger_s=0.05)
            b.start()
            doomed = b.submit("x", deadline_s=0.001)
            await asyncio.sleep(0.0)
            with pytest.raises(DeadlineExceeded):
                await doomed
            # the batcher stays healthy for the next request
            ok = await b.submit("y")
            await b.drain()
            return ok

        assert asyncio.run(run()) == "y"
        assert ["y"] in calls and ["x"] not in calls

    def test_reduce_fn_exception_delivered_per_future(self):
        def reduce_fn(items, threshold):
            raise RuntimeError("kernel exploded")

        async def run():
            b = MicroBatcher(reduce_fn, max_batch=4, max_linger_s=0.01)
            b.start()
            futs = [b.submit(i) for i in range(3)]
            outcomes = await asyncio.gather(*futs, return_exceptions=True)
            await b.drain()  # the task survived the exception
            return outcomes

        outcomes = asyncio.run(run())
        assert all(isinstance(o, RuntimeError) for o in outcomes)

    def test_metrics_reconcile(self, global_obs):
        def reduce_fn(items, threshold):
            return items

        async def run():
            b = MicroBatcher(reduce_fn, max_batch=4, max_linger_s=0.01)
            b.start()
            await asyncio.gather(*[b.submit(i) for i in range(10)])
            await b.drain()
            return b

        b = asyncio.run(run())
        snap = global_obs.snapshot()
        batches = _counter_sum(global_obs, "repro_serve_batches_total")
        assert batches == b.batches_processed >= 3  # 10 items, max_batch 4
        hist = snap["histograms"]["repro_serve_batch_items"][0]
        assert hist["count"] == batches
        assert hist["sum"] == 10 == b.requests_accepted


# ---------------------------------------------------------------------------
# daemon endpoints (in-process, asyncio client)
# ---------------------------------------------------------------------------


RANKS = 8


def _payload(values: np.ndarray, **extra) -> bytes:
    return json.dumps(
        {"values_b64": encode_values(values), **extra}
    ).encode()


def _serial_hex(values: np.ndarray, *, threshold=None) -> str:
    comm = SimComm(RANKS)
    reducer = AdaptiveReducer(comm)
    result = reducer.reduce(comm.scatter_array(values), threshold=threshold)
    return float(result.value).hex()


class TestDaemonEndpoints:
    def _run(self, coro_fn, **daemon_kw):
        kw = dict(ranks=RANKS, max_batch=8, max_linger_us=500.0, workers=1)
        kw.update(daemon_kw)

        async def main():
            async with ReproServeDaemon(**kw) as daemon:
                return await coro_fn(daemon)

        return asyncio.run(main())

    def test_healthz(self):
        async def go(d):
            return await http_request(d.host, d.port, "GET", "/healthz")

        resp = self._run(go)
        assert resp.status == 200
        body = resp.json()
        assert body["status"] == "ok"
        assert body["ranks"] == RANKS

    def test_reduce_bitwise_equals_serial(self, rng):
        values = rng.normal(size=1024) * 10.0 ** rng.integers(
            -20, 20, size=1024
        )

        async def go(d):
            return await http_request(
                d.host, d.port, "POST", "/v1/reduce", _payload(values)
            )

        resp = self._run(go)
        assert resp.status == 200
        body = resp.json()
        assert body["value_hex"] == _serial_hex(values)
        # the JSON float round-trips to the same bits as the hex form
        assert float(body["value"]).hex() == body["value_hex"]
        assert body["algorithm"]
        assert body["tier"] in ("profile", "bound")

    def test_unbatched_reference_mode_bitwise(self, rng):
        # batching=False is the request-at-a-time baseline the serve bench
        # measures against: no coalescing, one solo reduce() per request —
        # and bitwise-identical answers to the batched path
        values = rng.normal(size=1024) * 10.0 ** rng.integers(
            -20, 20, size=1024
        )

        async def go(d):
            assert d.batcher.max_batch == 1
            resp = await http_request(
                d.host, d.port, "POST", "/v1/reduce", _payload(values)
            )
            return resp, d.batcher.batches_processed

        resp, batches = self._run(go, batching=False)
        assert resp.status == 200
        assert resp.json()["value_hex"] == _serial_hex(values)
        assert batches == 1

    def test_reduce_accepts_plain_values_and_chunks(self, rng):
        values = rng.normal(size=64)
        comm = SimComm(RANKS)
        chunk_body = json.dumps(
            {"chunks": [c.tolist() for c in comm.scatter_array(values)]}
        ).encode()
        plain_body = json.dumps({"values": values.tolist()}).encode()

        async def go(d):
            a = await http_request(
                d.host, d.port, "POST", "/v1/reduce", plain_body
            )
            b = await http_request(
                d.host, d.port, "POST", "/v1/reduce", chunk_body
            )
            return a, b

        a, b = self._run(go)
        assert a.status == b.status == 200
        expected = _serial_hex(values)
        assert a.json()["value_hex"] == expected
        assert b.json()["value_hex"] == expected

    def test_reduce_threshold_is_honored(self, rng):
        values = rng.normal(size=512)

        async def go(d):
            return await http_request(
                d.host, d.port, "POST", "/v1/reduce",
                _payload(values, threshold=1e-2),
            )

        resp = self._run(go)
        body = resp.json()
        assert body["threshold"] == 1e-2  # repro: allow[FP007] -- exact JSON round-trip of the request's double is the property under test
        assert body["value_hex"] == _serial_hex(values, threshold=1e-2)

    def test_reduce_many_bitwise_per_item(self, rng):
        streams = [
            rng.normal(size=n) * 10.0 ** rng.integers(-15, 15, size=n)
            for n in (256, 256, 512, 64)
        ]
        body = json.dumps(
            {"items": [{"values_b64": encode_values(v)} for v in streams]}
        ).encode()

        async def go(d):
            return await http_request(
                d.host, d.port, "POST", "/v1/reduce_many", body
            )

        resp = self._run(go)
        assert resp.status == 200
        results = resp.json()["results"]
        assert [r["value_hex"] for r in results] == [
            _serial_hex(v) for v in streams
        ]

    def test_reduce_many_empty_items(self):
        async def go(d):
            return await http_request(
                d.host, d.port, "POST", "/v1/reduce_many", b'{"items":[]}'
            )

        resp = self._run(go)
        assert resp.status == 200
        assert resp.json() == {"results": []}

    def test_reduce_many_shared_threshold(self, rng):
        values = rng.normal(size=128)
        body = json.dumps(
            {
                "threshold": 1e-3,
                "items": [{"values_b64": encode_values(values)}],
            }
        ).encode()

        async def go(d):
            return await http_request(
                d.host, d.port, "POST", "/v1/reduce_many", body
            )

        resp = self._run(go)
        assert resp.json()["results"][0]["threshold"] == 1e-3  # repro: allow[FP007] -- exact JSON round-trip of the shared threshold is the property under test

    def test_ensemble_matches_direct_evaluation(self, rng):
        values = rng.normal(size=300)
        body = _payload(values, algorithm="FB", n_trees=16, seed=42,
                        shape="balanced")

        async def go(d):
            return await http_request(
                d.host, d.port, "POST", "/v1/ensemble", body
            )

        resp = self._run(go)
        assert resp.status == 200
        payload = resp.json()
        direct = evaluate_ensemble(
            values, "balanced", get_algorithm("FB"), 16, seed=42, workers=1
        )
        assert payload["values_hex"] == [float(v).hex() for v in direct]
        assert payload["spread"] == float(direct.max() - direct.min())

    def test_error_statuses(self, rng):
        values = rng.normal(size=64)

        async def go(d):
            out = {}
            out["bad_json"] = await http_request(
                d.host, d.port, "POST", "/v1/reduce", b"junk"
            )
            out["not_found"] = await http_request(
                d.host, d.port, "GET", "/nope"
            )
            out["bad_method"] = await http_request(
                d.host, d.port, "GET", "/v1/reduce"
            )
            out["bad_threshold"] = await http_request(
                d.host, d.port, "POST", "/v1/reduce",
                _payload(values, threshold=-1),
            )
            out["nan_threshold"] = await http_request(
                d.host, d.port, "POST", "/v1/reduce",
                _payload(values, threshold="nan"),
            )
            out["bad_chunks"] = await http_request(
                d.host, d.port, "POST", "/v1/reduce",
                json.dumps({"chunks": [[1.0]]}).encode(),  # wrong rank count
            )
            out["bad_algorithm"] = await http_request(
                d.host, d.port, "POST", "/v1/ensemble",
                _payload(values, algorithm="NOPE", n_trees=4),
            )
            out["rank_mismatch"] = await http_request(
                d.host, d.port, "POST", "/v1/reduce",
                json.dumps({"values": []}).encode(),
            )
            return out

        out = self._run(go)
        assert out["bad_json"].status == 400
        assert out["not_found"].status == 404
        assert out["bad_method"].status == 405
        assert out["bad_threshold"].status == 400
        assert out["nan_threshold"].status == 400
        assert out["bad_chunks"].status == 400
        assert out["bad_algorithm"].status == 400
        # empty global vector scatters to empty chunks: served, not a crash
        assert out["rank_mismatch"].status == 200
        assert float.fromhex(out["rank_mismatch"].json()["value_hex"]) == 0.0

    def test_backpressure_maps_to_429_with_retry_after(self, rng):
        values = rng.normal(size=64)

        async def go(d):
            def full(*a, **k):
                raise BatcherFull("queue at 4/4")

            d.batcher.submit = full
            return await http_request(
                d.host, d.port, "POST", "/v1/reduce", _payload(values)
            )

        resp = self._run(go)
        assert resp.status == 429
        assert resp.headers.get("retry-after") == "1"

    def test_draining_daemon_answers_503(self, rng):
        values = rng.normal(size=64)

        async def go(d):
            await d.batcher.drain()
            return await http_request(
                d.host, d.port, "POST", "/v1/reduce", _payload(values)
            )

        resp = self._run(go)
        assert resp.status == 503

    def test_expired_deadline_answers_504(self, rng):
        values = rng.normal(size=64)
        # linger 100ms >> 10us deadline: the request expires in the queue
        body = _payload(values, deadline_ms=0.01)

        async def go(d):
            return await http_request(
                d.host, d.port, "POST", "/v1/reduce", body
            )

        resp = self._run(go, max_batch=64, max_linger_us=100_000.0)
        assert resp.status == 504

    def test_metrics_endpoint_parses_and_counts(self, rng, global_obs):
        values = rng.normal(size=256)

        async def go(d):
            for _ in range(3):
                r = await http_request(
                    d.host, d.port, "POST", "/v1/reduce", _payload(values)
                )
                assert r.status == 200
            return await http_request(d.host, d.port, "GET", "/metrics")

        resp = self._run(go)
        assert resp.status == 200
        assert resp.headers["content-type"].startswith("text/plain")
        parsed = parse_prometheus_text(resp.body.decode())
        by_name: dict = {}
        for s in parsed["samples"]:
            key = (s["name"], tuple(sorted(s["labels"].items())))
            by_name[key] = s["value"]
        ok_reduces = by_name[
            (
                "repro_serve_requests_total",
                (("endpoint", "/v1/reduce"), ("status", "200")),
            )
        ]
        assert ok_reduces == 3
        assert parsed["types"]["repro_serve_requests_total"] == "counter"
        assert parsed["types"]["repro_serve_request_seconds"] == "histogram"
        batches = sum(
            s["value"]
            for s in parsed["samples"]
            if s["name"] == "repro_serve_batches_total"
        )
        assert batches >= 1

    def test_keep_alive_connection_serves_multiple_requests(self, rng):
        values = rng.normal(size=64)

        async def go(d):
            reader, writer = await asyncio.open_connection(d.host, d.port)
            try:
                hexes = []
                for _ in range(3):
                    r = await http_request(
                        d.host, d.port, "POST", "/v1/reduce",
                        _payload(values), reader=reader, writer=writer,
                    )
                    assert r.status == 200
                    hexes.append(r.json()["value_hex"])
                return hexes
            finally:
                writer.close()

        hexes = self._run(go)
        assert len(set(hexes)) == 1 == len(set(hexes) & {_serial_hex(values)})


# ---------------------------------------------------------------------------
# threaded-client concurrency: bitwise identity + metric reconciliation
# ---------------------------------------------------------------------------


class _DaemonThread:
    """Run a daemon on a private event loop in a background thread so
    plain blocking clients (threads with urllib) can drive it."""

    def __init__(self, **daemon_kw):
        self.daemon_kw = daemon_kw
        self.daemon: "ReproServeDaemon | None" = None

    def __enter__(self) -> "_DaemonThread":
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._thread_main, daemon=True)
        self._thread.start()
        assert self._ready.wait(30), "daemon failed to start"
        return self

    def _thread_main(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        async with ReproServeDaemon(**self.daemon_kw) as daemon:
            self.daemon = daemon
            self._ready.set()
            await self._stop.wait()

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    @property
    def port(self) -> int:
        assert self.daemon is not None
        return self.daemon.port


def _post(port: int, path: str, payload: dict, timeout: float = 60.0):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


class TestConcurrentServing:
    N_THREADS = 4
    PER_THREAD = 8

    def test_concurrent_clients_bitwise_and_reconciled(self, global_obs):
        rng = np.random.default_rng(777)
        streams = [
            rng.normal(size=256) * 10.0 ** rng.integers(-10, 10, size=256)
            for _ in range(self.N_THREADS * self.PER_THREAD)
        ]
        expected = [_serial_hex(v) for v in streams]
        results: "list[str | None]" = [None] * len(streams)
        errors: list = []

        def client(tid: int) -> None:
            for j in range(self.PER_THREAD):
                idx = tid * self.PER_THREAD + j
                try:
                    status, body = _post(
                        port,
                        "/v1/reduce",
                        {"values_b64": encode_values(streams[idx])},
                    )
                    assert status == 200, body
                    results[idx] = body["value_hex"]
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append((idx, exc))

        with _DaemonThread(
            ranks=RANKS, max_batch=16, max_linger_us=2000.0, workers=1
        ) as handle:
            port = handle.port
            threads = [
                threading.Thread(target=client, args=(t,))
                for t in range(self.N_THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors, errors
            # every concurrent response equals its serial recomputation
            assert results == expected

            info = handle.daemon.reducer.decision_cache_info()
            batcher = handle.daemon.batcher
            accepted = batcher.requests_accepted

        n = len(streams)
        assert accepted == n
        # serve-layer metrics reconcile with the request count ...
        assert (
            _counter_sum(
                global_obs,
                "repro_serve_requests_total",
                endpoint="/v1/reduce",
                status="200",
            )
            == n
        )
        snap = global_obs.snapshot()
        hist = snap["histograms"]["repro_serve_batch_items"][0]
        assert hist["sum"] == n  # every accepted request rode exactly one tick
        assert hist["count"] == _counter_sum(
            global_obs, "repro_serve_batches_total"
        )
        assert _counter_sum(global_obs, "repro_serve_rejected_total") == 0
        assert (
            _counter_sum(global_obs, "repro_serve_deadline_misses_total") == 0
        )
        # ... and the decision cache saw exactly one query per item, with
        # hits + misses == queries (the lock keeps the tallies exact)
        assert info["hits"] + info["misses"] == n
        assert info["misses"] >= 1


# ---------------------------------------------------------------------------
# SIGTERM lifecycle (real subprocess)
# ---------------------------------------------------------------------------


_REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


class TestSigterm:
    def _spawn(self, *extra_args: str) -> "tuple[subprocess.Popen, int]":
        env = {
            **os.environ,
            "PYTHONPATH": _REPO_SRC,
            # force the pool + shm arenas to materialise on small traffic
            "REPRO_WORKERS": "2",
            "REPRO_PARALLEL_MIN_ITEMS": "1",
            "REPRO_PARALLEL_MIN_BYTES": "1",
        }
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve.cli",
                "--port", "0", "--ranks", "8", "--workers", "2",
                "--max-batch", "16", "--max-linger-us", "200",
                *extra_args,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        banner = proc.stdout.readline()
        try:
            port = int(banner.rsplit(":", 1)[1].split()[0].split("(")[0])
        except (IndexError, ValueError):
            proc.kill()
            raise AssertionError(f"no listen banner, got {banner!r}") from None
        return proc, port

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="needs POSIX shared memory"
    )
    def test_sigterm_drains_and_unlinks_shm(self):
        rng = np.random.default_rng(5)
        before = set(os.listdir("/dev/shm"))
        proc, port = self._spawn()
        try:
            items = [
                {"values_b64": encode_values(rng.normal(size=2048))}
                for _ in range(8)
            ]
            status, body = _post(port, "/v1/reduce_many", {"items": items})
            assert status == 200
            assert len(body["results"]) == 8
            during = {
                n for n in set(os.listdir("/dev/shm")) - before
                if n.startswith("psm_")
            }
            assert during, "worker-pool arenas never materialised"
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        tail = proc.stdout.read()
        assert rc == 0, f"exit {rc}: {tail}"
        assert "shutdown complete" in tail
        leaked = set(os.listdir("/dev/shm")) - before
        assert not leaked, f"leaked shm segments: {sorted(leaked)}"

    def test_sigint_also_exits_cleanly(self):
        proc, port = self._spawn("--no-metrics")
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=30
            ) as resp:
                assert resp.status == 200
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                rc = proc.wait(timeout=60)
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)
        assert rc == 0


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCli:
    def test_parser_defaults(self):
        from repro.serve.cli import build_parser

        args = build_parser().parse_args([])
        assert args.port == 8077
        assert args.ranks == 8
        assert args.max_batch == 64
        assert args.max_linger_us == 1000.0
        assert args.queue_size == 1024
        assert args.deadline_ms is None
        assert not args.no_metrics
        assert not args.no_batching

    def test_parser_knobs(self):
        from repro.serve.cli import build_parser

        args = build_parser().parse_args(
            [
                "--workers", "4", "--max-batch", "64", "--ranks", "48",
                "--bound-confidence", "1.0", "--deadline-ms", "250",
                "--no-metrics",
            ]
        )
        assert args.workers == 4
        assert args.ranks == 48
        assert args.bound_confidence == 1.0
        assert args.deadline_ms == 250.0
        assert args.no_metrics
