"""Summation algorithm zoo: accuracy classes, interfaces, registry."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import exact_sum_fraction
from repro.fp.properties import UNIT_ROUNDOFF
from repro.summation import (
    PAPER_CODES,
    SumContext,
    all_algorithms,
    get_algorithm,
    paper_algorithms,
)

small_lists = st.lists(
    st.floats(allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12),
    min_size=0,
    max_size=50,
)

ALL_CODES = [a.code for a in all_algorithms()]


class TestRegistry:
    def test_paper_codes_in_cost_order(self):
        algs = paper_algorithms()
        assert [a.code for a in algs] == list(PAPER_CODES)
        ranks = [a.cost_rank for a in algs]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(ranks)

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError, match="unknown summation algorithm"):
            get_algorithm("NOPE")

    def test_deterministic_flags(self):
        assert get_algorithm("PR").deterministic
        assert get_algorithm("EX").deterministic
        assert not get_algorithm("ST").deterministic
        assert not get_algorithm("K").deterministic
        assert not get_algorithm("CP").deterministic


@pytest.mark.parametrize("code", ALL_CODES)
class TestUniformInterface:
    def test_empty_sum_is_zero(self, code):
        alg = get_algorithm(code)
        ctx = SumContext(max_abs=0.0, n_hint=0)
        assert alg.sum_array(np.array([]), ctx) == 0.0

    def test_single_value(self, code):
        alg = get_algorithm(code)
        ctx = SumContext(max_abs=3.5, n_hint=1)
        assert alg.sum_array(np.array([3.5]), ctx) == 3.5

    def test_accumulator_matches_reasonable_accuracy(self, code):
        rng = np.random.default_rng(17)
        x = rng.uniform(-1.0, 1.0, 300)
        exact = exact_sum_fraction(x)
        ctx = SumContext.for_data(x)
        acc = get_algorithm(code).make_accumulator(ctx)
        acc.add_array(x)
        err = abs(float(Fraction(acc.result()) - exact))
        # even plain ST on 300 moderate values errs < n*u*sum|x|
        assert err <= 300 * UNIT_ROUNDOFF * float(np.sum(np.abs(x)))

    def test_merge_of_halves(self, code):
        rng = np.random.default_rng(23)
        x = rng.uniform(-100.0, 100.0, 200)
        ctx = SumContext.for_data(x)
        alg = get_algorithm(code)
        a = alg.make_accumulator(ctx)
        a.add_array(x[:100])
        b = alg.make_accumulator(ctx)
        b.add_array(x[100:])
        a.merge(b)
        exact = exact_sum_fraction(x)
        err = abs(float(Fraction(a.result()) - exact))
        assert err <= 400 * UNIT_ROUNDOFF * float(np.sum(np.abs(x)))


class TestAccuracyOrdering:
    """The paper's central quality ranking on a hostile workload."""

    @pytest.fixture(scope="class")
    def errors(self):
        from repro.generators import zero_sum_set

        data = zero_sum_set(4096, dr=32, seed=3)
        ctx = SumContext.for_data(data)
        out = {}
        for code in ("ST", "K", "CP", "PR", "DD", "KBN", "EX"):
            v = get_algorithm(code).sum_array(data, ctx)
            out[code] = abs(v)  # exact sum is zero
        return out

    def test_st_worst(self, errors):
        assert errors["ST"] >= max(errors["K"], errors["CP"], errors["PR"])

    def test_cp_at_least_as_good_as_kahan(self, errors):
        assert errors["CP"] <= errors["K"] or errors["CP"] == 0.0

    def test_exact_and_pr_nail_zero(self, errors):
        assert errors["EX"] == 0.0
        assert errors["PR"] == 0.0

    def test_dd_high_quality(self, errors):
        assert errors["DD"] <= errors["K"]


class TestStandard:
    def test_sequential_semantics(self):
        # ST must reproduce the literal left-to-right loop bitwise
        rng = np.random.default_rng(5)
        x = rng.uniform(-1, 1, 1000)
        s = 0.0
        for v in x.tolist():
            s += v  # repro: allow[FP003] -- the literal serial loop is the reference under test
        assert get_algorithm("ST").sum_array(x) == s

    def test_pairwise_differs_from_sequential_sometimes(self):
        rng = np.random.default_rng(6)
        x = rng.uniform(-1, 1, 10_000)
        st_v = get_algorithm("ST").sum_array(x)
        pw_v = get_algorithm("PW").sum_array(x)
        # not asserting inequality (could coincide), but both near exact
        exact = exact_sum_fraction(x)
        assert abs(float(Fraction(pw_v) - exact)) <= abs(
            float(Fraction(st_v) - exact)
        ) + 1e-10


class TestKahanClassic:
    def test_add_matches_textbook_loop(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(-1, 1, 500)
        acc = get_algorithm("K").make_accumulator()
        s = c = 0.0
        for v in x.tolist():
            acc.add(v)
            y = v - c
            t = s + y
            c = (t - s) - y  # repro: allow[FP004] -- the Kahan recurrence is the reference under test
            s = t
        assert acc.result() == s

    def test_kahan_beats_st_on_classic_case(self):
        # the 1, u, u, u... pattern ST loses entirely
        n = 10_000
        x = np.full(n, UNIT_ROUNDOFF)
        x[0] = 1.0
        st_v = get_algorithm("ST").sum_array(x)
        acc = get_algorithm("K").make_accumulator()
        for v in x.tolist():
            acc.add(v)
        exact = Fraction(1) + (n - 1) * Fraction(UNIT_ROUNDOFF)
        assert abs(float(Fraction(acc.result()) - exact)) < abs(
            float(Fraction(st_v) - exact)
        )

    def test_neumaier_handles_large_then_small(self):
        x = np.array([1.0, 1e100, 1.0, -1e100])
        kbn = get_algorithm("KBN").make_accumulator()
        for v in x.tolist():
            kbn.add(v)
        assert kbn.result() == 2.0


class TestComposite:
    def test_error_propagated_not_folded(self):
        acc = get_algorithm("CP").make_accumulator()
        acc.add(1e16)
        acc.add(1.0)  # absorbed by ST, held in e by CP
        acc.add(-1e16)
        assert acc.result() == 1.0

    @given(small_lists)
    @settings(max_examples=40)
    def test_cp_sum_error_second_order(self, xs):
        x = np.array(xs, dtype=np.float64)
        v = get_algorithm("CP").sum_array(x)
        exact = exact_sum_fraction(x)
        t = float(np.sum(np.abs(x))) if x.size else 0.0
        bound = (
            2 * UNIT_ROUNDOFF * abs(float(exact))
            + (4 * max(len(xs), 1) * UNIT_ROUNDOFF) ** 2 * t
            + 5e-324
        )
        assert abs(float(Fraction(v) - exact)) <= bound


class TestSortedOrders:
    def test_conventional_wisdom_ascending_for_same_sign(self):
        from repro.summation import conventional_wisdom_order

        x = np.array([3.0, 1.0, 2.0])
        assert conventional_wisdom_order(x).tolist() == [1.0, 2.0, 3.0]

    def test_conventional_wisdom_descending_for_mixed(self):
        from repro.summation import conventional_wisdom_order

        x = np.array([3.0, -1.0, 2.0])
        assert conventional_wisdom_order(x).tolist() == [3.0, 2.0, -1.0]

    def test_buffering_accumulator_order_invariant(self):
        rng = np.random.default_rng(8)
        x = rng.uniform(-1, 1, 200)
        alg = get_algorithm("SO")
        a = alg.make_accumulator()
        a.add_array(x)
        b = alg.make_accumulator()
        b.add_array(x[::-1].copy())
        assert a.result() == b.result()

    def test_merge_concatenates(self):
        alg = get_algorithm("SO")
        a = alg.make_accumulator()
        a.add(1.0)
        b = alg.make_accumulator()
        b.add(2.0)
        a.merge(b)
        assert a.result() == 3.0
