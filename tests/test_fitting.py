"""Calibration of the analytic variability model from measured grids."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.grid import grid_sweep
from repro.selection import VariabilityModel, fit_variability_model


@pytest.fixture(scope="module")
def sweep():
    return grid_sweep(
        n_values=[1024],
        k_values=[1e3, 1e6, 1e9, 1e12],
        dr_values=[0, 16],
        codes=("ST", "K", "CP"),
        n_trees=80,
        seed=77,
    )


class TestFitting:
    def test_fit_produces_finite_constants(self, sweep):
        report = fit_variability_model(sweep)
        m = report.model
        assert 0 < m.c_st < 10
        assert 0 < m.c_k < 10
        assert report.n_cells_used["ST"] == 8

    def test_fitted_model_tighter_than_defaults(self, sweep):
        """Fitting must reduce the rms log-error of ST predictions below
        one decade (the default ships 'within two decades')."""
        report = fit_variability_model(sweep)
        assert report.rms_decades["ST"] < 1.0
        assert report.rms_decades["K"] < 1.0

    def test_fitted_predictions_track_measurements(self, sweep):
        report = fit_variability_model(sweep)
        from repro.metrics.properties import SetProfile

        for cell in sweep:
            measured = cell.stats["ST"].rel_std
            if not measured:
                continue
            profile = SetProfile(
                n=cell.n,
                condition=cell.achieved_condition,
                dynamic_range=cell.dynamic_range,
                max_abs=1.0,
            )
            predicted = report.model.predict_std("ST", profile)
            assert predicted / measured < 30 and measured / predicted < 30

    def test_cp_fallback_when_unmeasurable(self, sweep):
        """CP measures exactly zero at this scale -> fitted c_cp falls back
        to the default rather than zero."""
        report = fit_variability_model(sweep)
        defaults = VariabilityModel()
        if report.n_cells_used["CP"] == 0:
            assert report.model.c_cp == defaults.c_cp
            assert math.isnan(report.rms_decades["CP"])

    def test_empty_input(self):
        report = fit_variability_model([])
        defaults = VariabilityModel()
        assert report.model.c_st == defaults.c_st
