"""Hypothesis-driven structural properties of reduction trees."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summation import get_algorithm
from repro.trees import (
    balanced,
    evaluate_tree_generic,
    from_parent_array,
    random_shape,
    serial,
    skewed,
)


@st.composite
def trees(draw):
    n = draw(st.integers(min_value=1, max_value=64))
    kind = draw(st.sampled_from(["balanced", "serial", "random", "skewed"]))
    if kind == "balanced":
        return balanced(n)
    if kind == "serial":
        return serial(n)
    if kind == "skewed":
        return skewed(n, draw(st.floats(min_value=0.0, max_value=1.0)))
    return random_shape(n, seed=draw(st.integers(0, 2**31 - 1)))


class TestStructuralInvariants:
    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_parent_array_roundtrip_preserves_semantics(self, tree):
        """parents() -> from_parent_array() yields a tree computing the same
        value for every (sequential-semantics) algorithm."""
        rebuilt = from_parent_array(tree.parents(), tree.n_leaves)
        rebuilt.validate()
        x = np.linspace(0.1, 1.0, tree.n_leaves) * np.resize(
            [1.0, -1.0], tree.n_leaves
        )
        for code in ("ST", "EX"):
            alg = get_algorithm(code)
            assert evaluate_tree_generic(rebuilt, x, alg) == evaluate_tree_generic(
                tree, x, alg
            )

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_depth_bounds(self, tree):
        import math

        d = tree.depth()
        n = tree.n_leaves
        lo = math.ceil(math.log2(n)) if n > 1 else 0
        assert lo <= d <= max(n - 1, 0)

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_leaf_depths_consistent(self, tree):
        ld = tree.leaf_depths()
        assert ld.size == tree.n_leaves
        assert int(ld.max()) == tree.depth() if tree.n_leaves > 1 else True
        if tree.n_leaves > 1:
            assert int(ld.min()) >= 1

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_oracle_value_shape_free(self, tree):
        """Whatever the shape, the exact oracle computes the exact sum."""
        rng = np.random.default_rng(tree.n_leaves)
        x = rng.uniform(-1e6, 1e6, tree.n_leaves)
        from repro.exact import exact_sum

        assert evaluate_tree_generic(tree, x, get_algorithm("EX")) == exact_sum(x)

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_sum_of_node_counts(self, tree):
        assert tree.n_nodes == 2 * tree.n_leaves - 1
        assert tree.schedule.shape == (max(tree.n_leaves - 1, 0), 2)
