"""Runtime selection: profiling sketch, policies, classifier, end-to-end."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.generators import generate_sum_set, zero_sum_set
from repro.metrics import profile_set
from repro.mpi import MachineTopology, SimComm
from repro.selection import (
    AdaptiveReducer,
    AnalyticPolicy,
    CostModel,
    GridCell,
    GridClassifier,
    StreamProfile,
    VariabilityModel,
    profile_chunk,
    profile_stream,
)


class TestStreamProfile:
    @pytest.mark.parametrize("k", [1.0, 1e3, 1e9, 1e15, math.inf])
    def test_condition_estimate_tracks_exact(self, k):
        data = generate_sum_set(5000, k, 16, seed=1).values
        sketch = profile_chunk(data)
        exact = profile_set(data)
        if math.isinf(k):
            assert math.isinf(sketch.condition_estimate())
        else:
            assert sketch.condition_estimate() == pytest.approx(
                exact.condition, rel=1e-6
            )

    def test_dr_exact(self):
        data = generate_sum_set(1000, 1e3, 24, seed=2).values
        assert profile_chunk(data).dynamic_range_estimate() == 24

    def test_merge_equals_whole(self):
        data = generate_sum_set(3000, 1e6, 8, seed=3).values
        whole = profile_chunk(data)
        merged = profile_stream([data[:1000], data[1000:1700], data[1700:]])
        assert merged.n == whole.n
        assert merged.max_abs == whole.max_abs
        assert merged.min_abs_nonzero == whole.min_abs_nonzero
        assert merged.condition_estimate() == pytest.approx(
            whole.condition_estimate(), rel=1e-9
        )

    def test_empty_profile(self):
        p = StreamProfile()
        assert p.condition_estimate() == 1.0
        assert p.dynamic_range_estimate() == 0
        p.update(np.array([]))
        assert p.n == 0

    def test_zeros_only(self):
        p = profile_chunk(np.zeros(5))
        assert p.condition_estimate() == 1.0
        assert p.dynamic_range_estimate() == 0

    def test_as_set_profile_carries_abs_sum(self):
        p = profile_chunk(np.array([1.0, -2.0])).as_set_profile()
        assert p.abs_sum == 3.0 and p.has_abs_sum


class TestCostModel:
    def test_default_ranking_matches_paper(self):
        cm = CostModel()
        assert cm.rank(["PR", "ST", "CP", "K"]) == ["ST", "K", "CP", "PR"]

    def test_cost_scales_with_n(self):
        cm = CostModel()
        assert cm.cost("K", 2000) == 2 * cm.cost("K", 1000)
        with pytest.raises(KeyError):
            cm.cost("XX", 10)

    def test_selection_cost_includes_profiling(self):
        cm = CostModel()
        assert cm.selection_cost("ST", 100) > cm.cost("ST", 100)
        assert cm.selection_cost("ST", 100, profiled=False) == cm.cost("ST", 100)

    def test_calibrate_keeps_ordering(self):
        cm = CostModel().calibrate(["ST", "K", "CP", "PR"], n=1 << 14, repeats=2)
        assert cm.relative["ST"] == 1.0
        assert cm.relative["K"] > 1.0


class TestAnalyticPolicy:
    def test_threshold_monotonic_escalation(self):
        policy = AnalyticPolicy()
        data = generate_sum_set(4096, 1e9, 16, seed=4).values
        profile = profile_chunk(data).as_set_profile()
        rank = {c: i for i, c in enumerate(["ST", "K", "CP", "PR"])}
        prev = -1
        for t in (1e-3, 1e-7, 1e-10, 1e-13, 1e-16, 0.0):
            decision = policy.select(profile, t)
            assert rank[decision.code] >= prev
            prev = rank[decision.code]

    def test_zero_sum_forces_most_robust(self):
        policy = AnalyticPolicy()
        data = zero_sum_set(1024, 16, seed=5)
        profile = profile_chunk(data).as_set_profile()
        assert policy.select(profile, 1e-10).code == "PR"

    def test_easy_data_keeps_st(self):
        policy = AnalyticPolicy()
        profile = profile_chunk(np.abs(np.random.default_rng(6).uniform(1, 2, 1000)))
        assert policy.select(profile.as_set_profile(), 1e-10).code == "ST"

    def test_decision_records_predictions(self):
        policy = AnalyticPolicy()
        p = profile_chunk(np.array([1.0, 2.0])).as_set_profile()
        d = policy.select(p, 1e-10)
        assert set(d.candidate_predictions) == {"ST", "K", "CP", "PR"}
        assert d.threshold == pytest.approx(1e-10)

    def test_invalid_threshold(self):
        policy = AnalyticPolicy()
        p = profile_chunk(np.array([1.0])).as_set_profile()
        with pytest.raises(ValueError):
            policy.select(p, -1.0)

    def test_model_prediction_shapes(self):
        m = VariabilityModel()
        easy = profile_set(np.abs(np.random.default_rng(7).uniform(1, 2, 1000)))
        hard = generate_sum_set(1000, 1e12, 8, seed=8).values
        hard_p = profile_set(hard)
        assert m.predict_std("ST", hard_p) > m.predict_std("ST", easy)
        assert m.predict_std("ST", hard_p) > m.predict_std("K", hard_p)
        assert m.predict_std("K", hard_p) > m.predict_std("CP", hard_p)
        assert m.predict_std("PR", hard_p) == 0.0
        with pytest.raises(KeyError):
            m.predict_std("XX", easy)

    def test_model_order_of_magnitude_vs_measurement(self):
        """The analytic model must land within 2 decades of measured ST
        variability (decision granularity)."""
        from repro.metrics.errors import error_stats
        from repro.summation import get_algorithm
        from repro.trees import evaluate_ensemble

        m = VariabilityModel()
        for k in (1e3, 1e9):
            data = generate_sum_set(2048, k, 16, seed=9).values
            vals = evaluate_ensemble(data, "balanced", get_algorithm("ST"), 100, seed=10)
            measured = error_stats(vals, data).rel_std
            predicted = m.predict_std("ST", profile_set(data))
            assert predicted / measured < 100
            assert measured / predicted < 100


class TestGridClassifier:
    @pytest.fixture
    def classifier(self):
        cells = [
            GridCell(4096, 1.0, 0, {"ST": 1e-16, "K": 5e-17, "CP": 0.0, "PR": 0.0}),
            GridCell(4096, 1e6, 0, {"ST": 1e-11, "K": 8e-12, "CP": 0.0, "PR": 0.0}),
            GridCell(4096, 1e12, 0, {"ST": 1e-5, "K": 8e-6, "CP": 1e-13, "PR": 0.0}),
        ]
        return GridClassifier(cells)

    def test_nearest_cell_lookup(self, classifier):
        p = profile_set(generate_sum_set(4096, 1e6, 0, seed=11).values)
        cell = classifier.nearest_cell(p)
        assert cell.condition == 1e6

    def test_cheapest_for_thresholds(self, classifier):
        cell = classifier.cells[2]
        assert classifier.cheapest_for(cell, 1e-3) == "ST"
        assert classifier.cheapest_for(cell, 1e-5) == "ST"
        assert classifier.cheapest_for(cell, 9e-6) == "K"
        assert classifier.cheapest_for(cell, 1e-12) == "CP"
        assert classifier.cheapest_for(cell, 1e-14) == "PR"

    def test_select_returns_decision(self, classifier):
        p = profile_set(generate_sum_set(4096, 1e12, 0, seed=12).values)
        d = classifier.select(p, 1e-12)
        assert d.code == "CP"
        assert d.predicted_std == pytest.approx(1e-13)

    def test_json_roundtrip(self, classifier):
        text = classifier.to_json()
        loaded = GridClassifier.from_json(text)
        assert len(loaded.cells) == 3
        assert loaded.cells[1].stds == classifier.cells[1].stds

    def test_json_handles_inf(self):
        cells = [GridCell(64, math.inf, 0, {"ST": 1.0, "PR": 0.0})]
        loaded = GridClassifier.from_json(GridClassifier(cells).to_json())
        assert math.isinf(loaded.cells[0].condition)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GridClassifier([])

    def test_inconsistent_codes_rejected(self):
        cells = [
            GridCell(64, 1.0, 0, {"ST": 1.0}),
            GridCell(64, 2.0, 0, {"K": 1.0}),
        ]
        with pytest.raises(ValueError):
            GridClassifier(cells)


class TestAdaptiveReducer:
    @pytest.fixture
    def comm(self):
        return SimComm(topology=MachineTopology(nodes=2, sockets_per_node=2, cores_per_socket=4), seed=13)

    def test_end_to_end_decisions(self, comm):
        red = AdaptiveReducer(comm)
        easy = np.abs(np.random.default_rng(14).uniform(1, 2, 8000))
        res = red.reduce(comm.scatter_array(easy), threshold=1e-10)
        assert res.decision.code == "ST"
        assert res.value == pytest.approx(float(np.sum(easy)), rel=1e-12)

        hard = zero_sum_set(8000, 32, seed=15)
        res = red.reduce(comm.scatter_array(hard), threshold=1e-13)
        assert res.decision.code == "PR"
        assert res.value == 0.0

    def test_profile_reused_as_pr_prepass(self, comm):
        red = AdaptiveReducer(comm, threshold=0.0)
        data = zero_sum_set(4000, 16, seed=16)
        res = red.reduce(comm.scatter_array(data))
        assert res.reduce_result.algorithm_code == "PR"
        assert res.value == 0.0

    def test_nondeterministic_route(self, comm):
        red = AdaptiveReducer(comm)
        data = zero_sum_set(4000, 16, seed=17)
        res = red.reduce(comm.scatter_array(data), threshold=0.0, nondeterministic=True)
        assert res.value == 0.0

    def test_custom_policy_plugs_in(self, comm):
        classifier = GridClassifier(
            [GridCell(8000, 1.0, 0, {"ST": 0.0, "K": 0.0, "CP": 0.0, "PR": 0.0})]
        )
        red = AdaptiveReducer(comm, policy=classifier)
        data = np.abs(np.random.default_rng(18).uniform(1, 2, 8000))
        res = red.reduce(comm.scatter_array(data), threshold=1e-15)
        assert res.decision.code == "ST"

    def test_timers_populated(self, comm):
        red = AdaptiveReducer(comm)
        data = np.ones(800)
        res = red.reduce(comm.scatter_array(data))
        assert res.profile_seconds >= 0.0
        assert res.reduce_seconds >= 0.0

    def test_invalid_threshold(self, comm):
        with pytest.raises(ValueError):
            AdaptiveReducer(comm, threshold=-1.0)

    def test_invalid_per_call_threshold(self, comm):
        """Regression: ``reduce`` silently accepted a negative per-call
        threshold while ``reduce_many`` rejected it."""
        red = AdaptiveReducer(comm)
        with pytest.raises(ValueError):
            red.reduce(comm.scatter_array(np.ones(64)), threshold=-1e-13)
