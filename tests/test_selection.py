"""Runtime selection: profiling sketch, policies, classifier, end-to-end."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.generators import generate_sum_set, zero_sum_set
from repro.metrics import profile_set
from repro.mpi import MachineTopology, SimComm
from repro.selection import (
    AdaptiveReducer,
    AnalyticPolicy,
    CostModel,
    GridCell,
    GridClassifier,
    StreamProfile,
    VariabilityModel,
    profile_chunk,
    profile_stream,
)


class TestStreamProfile:
    @pytest.mark.parametrize("k", [1.0, 1e3, 1e9, 1e15, math.inf])
    def test_condition_estimate_tracks_exact(self, k):
        data = generate_sum_set(5000, k, 16, seed=1).values
        sketch = profile_chunk(data)
        exact = profile_set(data)
        if math.isinf(k):
            assert math.isinf(sketch.condition_estimate())
        else:
            assert sketch.condition_estimate() == pytest.approx(
                exact.condition, rel=1e-6
            )

    def test_dr_exact(self):
        data = generate_sum_set(1000, 1e3, 24, seed=2).values
        assert profile_chunk(data).dynamic_range_estimate() == 24

    def test_merge_equals_whole(self):
        data = generate_sum_set(3000, 1e6, 8, seed=3).values
        whole = profile_chunk(data)
        merged = profile_stream([data[:1000], data[1000:1700], data[1700:]])
        assert merged.n == whole.n
        assert merged.max_abs == whole.max_abs
        assert merged.min_abs_nonzero == whole.min_abs_nonzero
        assert merged.condition_estimate() == pytest.approx(
            whole.condition_estimate(), rel=1e-9
        )

    def test_empty_profile(self):
        p = StreamProfile()
        assert p.condition_estimate() == 1.0
        assert p.dynamic_range_estimate() == 0
        p.update(np.array([]))
        assert p.n == 0

    def test_zeros_only(self):
        p = profile_chunk(np.zeros(5))
        assert p.condition_estimate() == 1.0
        assert p.dynamic_range_estimate() == 0

    def test_as_set_profile_carries_abs_sum(self):
        p = profile_chunk(np.array([1.0, -2.0])).as_set_profile()
        assert p.abs_sum == 3.0 and p.has_abs_sum


class TestCostModel:
    def test_default_ranking_matches_paper(self):
        cm = CostModel()
        assert cm.rank(["PR", "ST", "CP", "K"]) == ["ST", "K", "CP", "PR"]

    def test_cost_scales_with_n(self):
        cm = CostModel()
        assert cm.cost("K", 2000) == 2 * cm.cost("K", 1000)
        with pytest.raises(KeyError):
            cm.cost("XX", 10)

    def test_selection_cost_includes_profiling(self):
        cm = CostModel()
        assert cm.selection_cost("ST", 100) > cm.cost("ST", 100)
        assert cm.selection_cost("ST", 100, profiled=False) == cm.cost("ST", 100)

    def test_calibrate_keeps_ordering(self):
        cm = CostModel().calibrate(["ST", "K", "CP", "PR"], n=1 << 14, repeats=2)
        assert cm.relative["ST"] == 1.0
        assert cm.relative["K"] > 1.0


class TestAnalyticPolicy:
    def test_threshold_monotonic_escalation(self):
        policy = AnalyticPolicy()
        data = generate_sum_set(4096, 1e9, 16, seed=4).values
        profile = profile_chunk(data).as_set_profile()
        rank = {c: i for i, c in enumerate(["ST", "K", "CP", "PR"])}
        prev = -1
        for t in (1e-3, 1e-7, 1e-10, 1e-13, 1e-16, 0.0):
            decision = policy.select(profile, t)
            assert rank[decision.code] >= prev
            prev = rank[decision.code]

    def test_zero_sum_forces_most_robust(self):
        policy = AnalyticPolicy()
        data = zero_sum_set(1024, 16, seed=5)
        profile = profile_chunk(data).as_set_profile()
        assert policy.select(profile, 1e-10).code == "PR"

    def test_easy_data_keeps_st(self):
        policy = AnalyticPolicy()
        profile = profile_chunk(np.abs(np.random.default_rng(6).uniform(1, 2, 1000)))
        assert policy.select(profile.as_set_profile(), 1e-10).code == "ST"

    def test_decision_records_predictions(self):
        policy = AnalyticPolicy()
        p = profile_chunk(np.array([1.0, 2.0])).as_set_profile()
        d = policy.select(p, 1e-10)
        assert set(d.candidate_predictions) == {"ST", "K", "CP", "PR"}
        assert d.threshold == pytest.approx(1e-10)

    def test_invalid_threshold(self):
        policy = AnalyticPolicy()
        p = profile_chunk(np.array([1.0])).as_set_profile()
        with pytest.raises(ValueError):
            policy.select(p, -1.0)

    def test_model_prediction_shapes(self):
        m = VariabilityModel()
        easy = profile_set(np.abs(np.random.default_rng(7).uniform(1, 2, 1000)))
        hard = generate_sum_set(1000, 1e12, 8, seed=8).values
        hard_p = profile_set(hard)
        assert m.predict_std("ST", hard_p) > m.predict_std("ST", easy)
        assert m.predict_std("ST", hard_p) > m.predict_std("K", hard_p)
        assert m.predict_std("K", hard_p) > m.predict_std("CP", hard_p)
        assert m.predict_std("PR", hard_p) == 0.0
        with pytest.raises(KeyError):
            m.predict_std("XX", easy)

    def test_model_order_of_magnitude_vs_measurement(self):
        """The analytic model must land within 2 decades of measured ST
        variability (decision granularity)."""
        from repro.metrics.errors import error_stats
        from repro.summation import get_algorithm
        from repro.trees import evaluate_ensemble

        m = VariabilityModel()
        for k in (1e3, 1e9):
            data = generate_sum_set(2048, k, 16, seed=9).values
            vals = evaluate_ensemble(data, "balanced", get_algorithm("ST"), 100, seed=10)
            measured = error_stats(vals, data).rel_std
            predicted = m.predict_std("ST", profile_set(data))
            assert predicted / measured < 100
            assert measured / predicted < 100


class TestGridClassifier:
    @pytest.fixture
    def classifier(self):
        cells = [
            GridCell(4096, 1.0, 0, {"ST": 1e-16, "K": 5e-17, "CP": 0.0, "PR": 0.0}),
            GridCell(4096, 1e6, 0, {"ST": 1e-11, "K": 8e-12, "CP": 0.0, "PR": 0.0}),
            GridCell(4096, 1e12, 0, {"ST": 1e-5, "K": 8e-6, "CP": 1e-13, "PR": 0.0}),
        ]
        return GridClassifier(cells)

    def test_nearest_cell_lookup(self, classifier):
        p = profile_set(generate_sum_set(4096, 1e6, 0, seed=11).values)
        cell = classifier.nearest_cell(p)
        assert cell.condition == 1e6

    def test_cheapest_for_thresholds(self, classifier):
        cell = classifier.cells[2]
        assert classifier.cheapest_for(cell, 1e-3) == "ST"
        assert classifier.cheapest_for(cell, 1e-5) == "ST"
        assert classifier.cheapest_for(cell, 9e-6) == "K"
        assert classifier.cheapest_for(cell, 1e-12) == "CP"
        assert classifier.cheapest_for(cell, 1e-14) == "PR"

    def test_select_returns_decision(self, classifier):
        p = profile_set(generate_sum_set(4096, 1e12, 0, seed=12).values)
        d = classifier.select(p, 1e-12)
        assert d.code == "CP"
        assert d.predicted_std == pytest.approx(1e-13)

    def test_json_roundtrip(self, classifier):
        text = classifier.to_json()
        loaded = GridClassifier.from_json(text)
        assert len(loaded.cells) == 3
        assert loaded.cells[1].stds == classifier.cells[1].stds

    def test_json_handles_inf(self):
        cells = [GridCell(64, math.inf, 0, {"ST": 1.0, "PR": 0.0})]
        loaded = GridClassifier.from_json(GridClassifier(cells).to_json())
        assert math.isinf(loaded.cells[0].condition)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GridClassifier([])

    def test_inconsistent_codes_rejected(self):
        cells = [
            GridCell(64, 1.0, 0, {"ST": 1.0}),
            GridCell(64, 2.0, 0, {"K": 1.0}),
        ]
        with pytest.raises(ValueError):
            GridClassifier(cells)


class TestAdaptiveReducer:
    @pytest.fixture
    def comm(self):
        return SimComm(topology=MachineTopology(nodes=2, sockets_per_node=2, cores_per_socket=4), seed=13)

    def test_end_to_end_decisions(self, comm):
        red = AdaptiveReducer(comm)
        easy = np.abs(np.random.default_rng(14).uniform(1, 2, 8000))
        res = red.reduce(comm.scatter_array(easy), threshold=1e-10)
        assert res.decision.code == "ST"
        assert res.value == pytest.approx(float(np.sum(easy)), rel=1e-12)

        hard = zero_sum_set(8000, 32, seed=15)
        res = red.reduce(comm.scatter_array(hard), threshold=1e-13)
        assert res.decision.code == "PR"
        assert res.value == 0.0

    def test_profile_reused_as_pr_prepass(self, comm):
        red = AdaptiveReducer(comm, threshold=0.0)
        data = zero_sum_set(4000, 16, seed=16)
        res = red.reduce(comm.scatter_array(data))
        assert res.reduce_result.algorithm_code == "PR"
        assert res.value == 0.0

    def test_nondeterministic_route(self, comm):
        red = AdaptiveReducer(comm)
        data = zero_sum_set(4000, 16, seed=17)
        res = red.reduce(comm.scatter_array(data), threshold=0.0, nondeterministic=True)
        assert res.value == 0.0

    def test_custom_policy_plugs_in(self, comm):
        classifier = GridClassifier(
            [GridCell(8000, 1.0, 0, {"ST": 0.0, "K": 0.0, "CP": 0.0, "PR": 0.0})]
        )
        red = AdaptiveReducer(comm, policy=classifier)
        data = np.abs(np.random.default_rng(18).uniform(1, 2, 8000))
        res = red.reduce(comm.scatter_array(data), threshold=1e-15)
        assert res.decision.code == "ST"

    def test_timers_populated(self, comm):
        red = AdaptiveReducer(comm)
        data = np.ones(800)
        res = red.reduce(comm.scatter_array(data))
        assert res.profile_seconds >= 0.0
        assert res.reduce_seconds >= 0.0

    def test_invalid_threshold(self, comm):
        with pytest.raises(ValueError):
            AdaptiveReducer(comm, threshold=-1.0)

    def test_invalid_per_call_threshold(self, comm):
        """Regression: ``reduce`` silently accepted a negative per-call
        threshold while ``reduce_many`` rejected it."""
        red = AdaptiveReducer(comm)
        with pytest.raises(ValueError):
            red.reduce(comm.scatter_array(np.ones(64)), threshold=-1e-13)


class TestDegenerateBatches:
    """Serving-path regression sweep: the daemon's micro-batcher can
    legitimately hand the selector an empty batch (every queued request
    expired), a single item, or items whose chunks are all empty — none
    of those may crash, warn, or disagree with the per-item path."""

    @pytest.fixture
    def comm(self):
        return SimComm(8)

    @pytest.fixture(params=[None, 1.0, 0.999999], ids=["no-tier", "det", "prob"])
    def reducer(self, comm, request):
        return AdaptiveReducer(comm, bound_confidence=request.param)

    def test_reduce_many_empty_batch(self, reducer):
        assert reducer.reduce_many([]) == []

    def test_reduce_many_empty_batch_with_workers(self, reducer):
        assert reducer.reduce_many([], workers=2) == []

    def test_reduce_many_empty_batch_validates_threshold(self, reducer):
        with pytest.raises(ValueError):
            reducer.reduce_many([], threshold=-1.0)

    def test_single_item_batch_equals_standalone(self, comm, reducer):
        data = zero_sum_set(512, 16, seed=3)
        chunks = comm.scatter_array(data)
        (batched,) = reducer.reduce_many([chunks])
        standalone = reducer.reduce(chunks)
        assert batched.value == standalone.value
        assert np.float64(batched.value).tobytes() == np.float64(
            standalone.value
        ).tobytes()
        assert batched.decision.code == standalone.decision.code

    def test_all_empty_chunk_items_warn_free(self, comm, reducer):
        """n=0 items carry inf condition numbers through the bound tier's
        vectorised statistics — masked lanes must stay silent."""
        empty = [np.empty(0) for _ in range(comm.n_ranks)]
        data = np.arange(64, dtype=np.float64)
        mixed = [empty, comm.scatter_array(data), empty]
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            results = reducer.reduce_many(mixed)
        assert results[0].value == 0.0
        assert results[2].value == 0.0
        assert results[1].value == float(np.sum(data))

    def test_all_empty_chunk_single_reduce(self, comm, reducer):
        import warnings

        empty = [np.empty(0) for _ in range(comm.n_ranks)]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            res = reducer.reduce(empty)
        assert res.value == 0.0

    def test_profile_batch_zero_items(self):
        from repro.selection.profile import profile_batch

        assert profile_batch([]) == []


class TestDecisionCacheThreadSafety:
    """The serving daemon drives one reducer from executor threads; the
    cache's hit/miss/eviction tallies must stay exact under that traffic
    (``hits + misses == queries``), and concurrent hot-key lookups must
    not corrupt the LRU OrderedDict."""

    def test_tallies_exact_under_threads(self):
        import threading

        comm = SimComm(4)
        red = AdaptiveReducer(comm)
        rng = np.random.default_rng(0)
        streams = [
            comm.scatter_array(rng.normal(size=256)) for _ in range(8)
        ]
        n_threads, per_thread = 4, 25
        barrier = threading.Barrier(n_threads)
        errors: list = []

        def worker(tid: int) -> None:
            try:
                barrier.wait()
                for i in range(per_thread):
                    red.reduce_many([streams[(tid + i) % len(streams)]])
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors, errors
        info = red.decision_cache_info()
        assert info["hits"] + info["misses"] == n_threads * per_thread
        assert info["size"] <= info["max_size"]


class TestDecisionCacheOrderIndependence:
    """Regression (found by the repro-serve bench): two items can share a
    decision-cache key (same n, k-decade, dr, threshold) yet straddle a
    selection boundary at their exact condition estimates.  Serving one
    item the other's memoised decision made the served *bits* depend on
    request arrival order.  Hits are now validated against the item's own
    exact-profile policy query, so every decision equals what a cold
    standalone ``reduce`` computes, in any order."""

    N_RANKS = 48
    CHUNK_LEN = 256

    def _conflicting_pair(self):
        """Items 1 and 23 of the bench workload share a cache key but
        select ST vs K at threshold 1e-13."""
        rng = np.random.default_rng(4242)
        n = self.N_RANKS * self.CHUNK_LEN
        vals = []
        for _ in range(24):
            vals.append(
                rng.uniform(-1.0, 1.0, n)
                * 10.0 ** rng.integers(-6, 7, size=n)
            )
        return vals[1], vals[23]

    def test_same_bucket_items_keep_their_own_decisions(self):
        a, b = self._conflicting_pair()
        comm = SimComm(self.N_RANKS)

        def fresh(v):
            return AdaptiveReducer(comm, threshold=1e-13).reduce(
                comm.scatter_array(v)
            )

        exp_a, exp_b = fresh(a), fresh(b)
        # the pair is only a regression guard while it actually straddles a
        # boundary inside one bucket
        ra = AdaptiveReducer(comm, threshold=1e-13)
        key_a = ra._decision_key(ra.profile(comm.scatter_array(a)), 1e-13)
        key_b = ra._decision_key(ra.profile(comm.scatter_array(b)), 1e-13)
        assert key_a == key_b
        assert exp_a.decision.code != exp_b.decision.code

        for order in ((a, b), (b, a)):
            # the serving path: a shared reducer's reduce_many, one item per
            # tick (the daemon's cache-warming order is the arrival order)
            shared = AdaptiveReducer(comm, threshold=1e-13)
            got = {
                id(v): shared.reduce_many(
                    [comm.scatter_array(v)], workers=1
                )[0]
                for v in order
            }
            for v, exp in ((a, exp_a), (b, exp_b)):
                assert got[id(v)].decision.code == exp.decision.code
                assert (
                    np.float64(got[id(v)].value).tobytes()
                    == np.float64(exp.value).tobytes()
                ), "served bits depended on arrival order"
            info = shared.decision_cache_info()
            assert info["hits"] + info["misses"] == 2
            # the boundary-straddling second item must not reuse the first
            # item's decision: it lands as an invalidation, not a hit
            assert info["invalidations"] == 1
