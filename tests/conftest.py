"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators.conditioned import generate_sum_set, zero_sum_set


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def nasty_set() -> np.ndarray:
    """Exact-zero-sum, wide-dynamic-range set: the hardest common workload."""
    return zero_sum_set(2048, dr=32, seed=7)


@pytest.fixture
def conditioned_set() -> np.ndarray:
    """Finite-k ill-conditioned set (k = 1e9, dr = 16)."""
    return generate_sum_set(2048, 1e9, 16, seed=11).values


@pytest.fixture
def benign_set(rng) -> np.ndarray:
    """Well-conditioned positive values."""
    return rng.uniform(1.0, 2.0, size=1024)
