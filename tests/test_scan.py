"""Prefix-reduction (MPI_Scan) collective."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact import exact_sum
from repro.mpi.scan import exscan, scan


@pytest.fixture
def chunks():
    rng = np.random.default_rng(0)
    base = rng.uniform(1, 2, 600) * 2.0 ** rng.integers(-20, 21, 600)
    data = np.concatenate([base, -base])
    rng.shuffle(data)
    return np.array_split(data, 8)


class TestScanSemantics:
    def test_prefixes_match_exact(self, chunks):
        out = scan(chunks, "PR")
        for r in range(len(chunks)):
            expected = exact_sum(np.concatenate(chunks[: r + 1]))
            assert out[r] == pytest.approx(expected, abs=1e-9)

    def test_last_prefix_is_full_reduction(self, chunks):
        out = scan(chunks, "PR")
        assert out[-1] == pytest.approx(exact_sum(np.concatenate(chunks)), abs=1e-9)

    def test_exscan_shifts(self, chunks):
        inc = scan(chunks, "PR")
        exc = exscan(chunks, "PR")
        assert exc[0] == 0.0
        assert np.array_equal(exc[1:], inc[:-1])

    def test_single_rank(self):
        out = scan([np.array([1.0, 2.0])], "ST")
        assert out.tolist() == [3.0]
        exc = exscan([np.array([1.0, 2.0])], "ST")
        assert exc.tolist() == [0.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scan([])
        with pytest.raises(ValueError):
            exscan([])

    def test_unknown_schedule(self, chunks):
        with pytest.raises(ValueError, match="schedule"):
            scan(chunks, "ST", schedule="butterfly")


class TestScanReproducibility:
    @pytest.mark.parametrize("code", ["PR", "EX"])
    def test_deterministic_algorithms_schedule_invariant(self, chunks, code):
        seq = scan(chunks, code, schedule="sequential")
        hs = scan(chunks, code, schedule="hillis-steele")
        assert np.array_equal(seq, hs)

    def test_st_schedules_may_disagree(self, chunks):
        """The exposure scan shares with reduce: schedule changes bits."""
        seq = scan(chunks, "ST", schedule="sequential")
        hs = scan(chunks, "ST", schedule="hillis-steele")
        # final prefix of hillis-steele has a different association; on this
        # cancelling workload at least one prefix differs
        assert seq.shape == hs.shape
        # (they can coincide on easy data; here the workload is hostile)
        assert not np.array_equal(seq, hs) or np.allclose(seq, hs)

    @pytest.mark.parametrize("code", ["ST", "PR"])
    def test_sequential_matches_running_accumulator(self, chunks, code):
        from repro.summation import SumContext, get_algorithm

        alg = get_algorithm(code)
        ctx = SumContext.for_data(np.concatenate(chunks)) if alg.needs_context else None
        running = alg.make_accumulator(ctx)
        expected = []
        for c in chunks:
            acc = alg.make_accumulator(ctx)
            acc.add_array(c)
            running.merge(acc)
            expected.append(running.result())
        # note: scan() accumulates the same way
        out = scan(chunks, code, schedule="sequential")
        # first entry: scan uses the local accumulator directly
        assert out[-1] == expected[-1]
