"""Failure-injection: non-finite operands across the stack.

Documents (and pins) each layer's contract when NaN/inf reach it:

* the exact layers (superaccumulator, PR, AS) *reject* non-finite input
  loudly — silently absorbing a NaN would forfeit their guarantees;
* the plain floating-point algorithms (ST, K, CP) *propagate* per IEEE
  semantics, like the hardware loop they model;
* metrics and generators reject, since k/dr are undefined.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exact import ExactSum
from repro.metrics import condition_number, dynamic_range
from repro.mpi import SimComm
from repro.summation import SumContext, get_algorithm

NASTY = [math.nan, math.inf, -math.inf]


class TestExactLayersReject:
    @pytest.mark.parametrize("bad", NASTY)
    def test_superaccumulator(self, bad):
        acc = ExactSum()
        with pytest.raises(ValueError):
            acc.add(bad)
        with pytest.raises(ValueError):
            acc.add_array(np.array([1.0, bad]))

    @pytest.mark.parametrize("bad", NASTY)
    def test_prerounded(self, bad):
        alg = get_algorithm("PR")
        acc = alg.make_accumulator(SumContext(max_abs=1.0))
        with pytest.raises(ValueError):
            acc.add(bad)
        with pytest.raises(ValueError):
            acc.add_array(np.array([0.5, bad]))

    def test_distillation_raises_or_propagates_loudly(self):
        alg = get_algorithm("AS")
        with pytest.raises((ValueError, RuntimeError, OverflowError)):
            alg.sum_array(np.array([1.0, math.nan]))


class TestFloatingLayersPropagate:
    @pytest.mark.parametrize("code", ["ST", "K", "CP", "DD", "PW", "FB"])
    def test_nan_propagates(self, code):
        alg = get_algorithm(code)
        out = alg.sum_array(np.array([1.0, math.nan, 2.0]))
        assert math.isnan(out)

    @pytest.mark.parametrize("code", ["ST", "PW"])
    def test_inf_propagates(self, code):
        alg = get_algorithm(code)
        assert get_algorithm(code).sum_array(np.array([1.0, math.inf])) == math.inf

    def test_conflicting_infs_nan(self):
        out = get_algorithm("ST").sum_array(np.array([math.inf, -math.inf]))
        assert math.isnan(out)


class TestMetricsReject:
    def test_condition_number(self):
        with pytest.raises(ValueError):
            condition_number(np.array([1.0, math.nan]))

    def test_dynamic_range(self):
        with pytest.raises(ValueError):
            dynamic_range(np.array([1.0, math.inf]))


class TestCollectiveMaxAllreduce:
    """Regression: ``SimComm.max_allreduce`` used Python ``max``, whose NaN
    behaviour depends on operand order (``max(1.0, nan) == 1.0`` but
    ``max(nan, 1.0)`` is nan) — PR's pre-pass context became rank-order
    dependent.  A NaN summand must poison the max deterministically."""

    def test_nan_poisons_max_in_any_position(self):
        comm = SimComm(3)
        for vals in (
            [math.nan, 1.0, 2.0],
            [1.0, math.nan, 2.0],
            [2.0, 1.0, math.nan],
        ):
            assert math.isnan(comm.max_allreduce(vals))

    def test_nan_max_is_order_independent(self):
        comm = SimComm(2)
        assert math.isnan(comm.max_allreduce([1.0, math.nan]))
        assert math.isnan(comm.max_allreduce([math.nan, 1.0]))

    def test_finite_max_unchanged(self):
        comm = SimComm(3)
        assert comm.max_allreduce([1.0, 5.0, 2.0]) == 5.0
        assert comm.max_allreduce([math.inf, 1.0, 2.0]) == math.inf


class TestIntervalLayer:
    def test_interval_rejects_nan_endpoints(self):
        from repro.interval import Interval

        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)

    def test_enclosure_of_nan_data_is_nan_safe(self):
        """Directed rounding of NaN data yields NaN endpoints; constructing
        the Interval then fails loudly rather than certifying garbage."""
        from repro.interval import sum_interval_array

        with pytest.raises(ValueError):
            sum_interval_array(np.array([1.0, math.nan]))
