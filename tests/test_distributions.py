"""Distributional analysis metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    EmpiricalCDF,
    ks_distance,
    stochastically_dominates,
    summarize,
)


class TestEmpiricalCDF:
    def test_basic_evaluation(self):
        cdf = EmpiricalCDF.from_sample([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == 0.25
        assert cdf(2.5) == 0.5
        assert cdf(4.0) == 1.0
        assert cdf(100.0) == 1.0

    def test_vectorized(self):
        cdf = EmpiricalCDF.from_sample([1.0, 2.0])
        out = cdf(np.array([0.0, 1.5, 3.0]))
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_quantiles(self):
        cdf = EmpiricalCDF.from_sample(np.arange(100, dtype=np.float64))
        assert cdf.quantile(0.0) == 0.0
        assert cdf.quantile(0.5) == 50.0
        assert cdf.quantile(1.0) == 99.0
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_sample([])

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_monotone_and_bounded(self, xs):
        cdf = EmpiricalCDF.from_sample(xs)
        grid = np.sort(np.array(xs))
        vals = cdf(grid)
        assert np.all(np.diff(vals) >= 0)
        assert 0.0 < vals[-1] <= 1.0


class TestSummarize:
    def test_gaussian_shape(self):
        rng = np.random.default_rng(0)
        s = summarize(rng.normal(5.0, 2.0, 50_000))
        assert s.mean == pytest.approx(5.0, abs=0.05)
        assert s.std == pytest.approx(2.0, abs=0.05)
        assert abs(s.skewness) < 0.05
        assert abs(s.excess_kurtosis) < 0.1
        assert not s.heavy_tailed

    def test_heavy_tail_flagged(self):
        rng = np.random.default_rng(1)
        s = summarize(rng.standard_t(3, 50_000))
        assert s.heavy_tailed

    def test_constant_sample(self):
        s = summarize(np.full(10, 3.0))
        assert s.std == 0.0 and s.skewness == 0.0
        assert s.quantiles[0.5] == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestComparisons:
    def test_ks_identical_zero(self):
        x = np.arange(50, dtype=np.float64)
        assert ks_distance(x, x) == 0.0

    def test_ks_disjoint_one(self):
        assert ks_distance([1.0, 2.0], [10.0, 20.0]) == 1.0

    def test_ks_symmetry(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(0, 1, 200), rng.normal(0.5, 1, 200)
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_dominance_on_algorithm_errors(self):
        """CP's |errors| stochastically dominate ST's on a hostile ensemble
        — the distributional statement of Fig. 7."""
        from repro.generators import zero_sum_set
        from repro.summation import get_algorithm
        from repro.trees import evaluate_ensemble

        data = zero_sum_set(2048, dr=32, seed=3)
        st_vals = evaluate_ensemble(data, "serial", get_algorithm("ST"), 40, seed=4)
        cp_vals = evaluate_ensemble(data, "serial", get_algorithm("CP"), 40, seed=4)
        # exact sum is zero, so the values ARE the signed errors
        assert stochastically_dominates(cp_vals, st_vals)
        assert not stochastically_dominates(st_vals, cp_vals)

    def test_dominance_slack(self):
        a = [1.0, 2.0, 3.0]
        b = [1.5, 2.5, 3.5]
        assert stochastically_dominates(a, b)
        assert stochastically_dominates(b, a, slack=1.0)
