"""Allreduce strategies: the collective-algorithm choice changes bits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact import exact_sum
from repro.generators import zero_sum_set
from repro.mpi import (
    SimComm,
    allreduce_recursive_doubling,
    allreduce_ring,
    make_reduction_op,
)
from repro.summation import get_algorithm


@pytest.fixture(scope="module")
def hostile_chunks():
    data = zero_sum_set(16_000, dr=32, seed=0)
    return SimComm(10).scatter_array(data), data


@pytest.fixture(scope="module")
def benign_chunks():
    rng = np.random.default_rng(1)
    data = rng.uniform(1.0, 2.0, 8000)
    return SimComm(8).scatter_array(data), data


class TestCorrectness:
    @pytest.mark.parametrize("code", ["ST", "K", "CP", "PR"])
    def test_both_strategies_near_exact_on_benign(self, benign_chunks, code):
        chunks, data = benign_chunks
        op = make_reduction_op(get_algorithm(code))
        exact = exact_sum(data)
        for strat in (allreduce_recursive_doubling, allreduce_ring):
            vals = strat(chunks, op)
            assert len(vals) == len(chunks)
            for v in vals:
                assert v == pytest.approx(exact, rel=1e-10)

    def test_non_power_of_two_prefold(self):
        comm = SimComm(6)
        chunks = comm.scatter_array(np.ones(60))
        op = make_reduction_op(get_algorithm("ST"))
        assert allreduce_recursive_doubling(chunks, op) == [60.0] * 6

    def test_single_rank(self):
        op = make_reduction_op(get_algorithm("CP"))
        assert allreduce_recursive_doubling([np.array([1.0, 2.0])], op) == [3.0]
        assert allreduce_ring([np.array([1.0, 2.0])], op) == [3.0]

    def test_empty_rejected(self):
        op = make_reduction_op(get_algorithm("ST"))
        with pytest.raises(ValueError):
            allreduce_recursive_doubling([], op)
        with pytest.raises(ValueError):
            allreduce_ring([], op)
        with pytest.raises(ValueError):
            allreduce_ring([np.ones(2)], op, segments=0)


class TestConsistencyHazards:
    def test_strategies_disagree_for_st_on_hostile_data(self, hostile_chunks):
        chunks, _ = hostile_chunks
        op = make_reduction_op(get_algorithm("ST"))
        bf = allreduce_recursive_doubling(chunks, op)
        ring = allreduce_ring(chunks, op)
        assert bf[0] != ring[0]

    def test_kahan_butterfly_ranks_can_disagree(self, hostile_chunks):
        """The classic hazard: an asymmetric op leaves different ranks
        holding different 'all-reduced' values."""
        chunks, _ = hostile_chunks
        op = make_reduction_op(get_algorithm("K"))
        bf = allreduce_recursive_doubling(chunks, op)
        assert len(set(bf)) > 1

    def test_ring_ranks_always_agree(self, hostile_chunks):
        chunks, _ = hostile_chunks
        for code in ("ST", "K", "CP", "PR"):
            vals = allreduce_ring(chunks, make_reduction_op(get_algorithm(code)))
            assert len(set(vals)) == 1

    def test_pr_identical_across_everything(self, hostile_chunks):
        """The selector's guarantee extends across collective algorithms:
        strategy, segmentation, and rank all agree bitwise under PR."""
        chunks, _ = hostile_chunks
        op = make_reduction_op(get_algorithm("PR"))
        bf = allreduce_recursive_doubling(chunks, op)
        ring1 = allreduce_ring(chunks, op, segments=1)
        ring5 = allreduce_ring(chunks, op, segments=5)
        everything = set(bf) | set(ring1) | set(ring5)
        assert everything == {0.0}

    def test_cp_agrees_across_strategies_here(self, hostile_chunks):
        chunks, _ = hostile_chunks
        op = make_reduction_op(get_algorithm("CP"))
        bf = allreduce_recursive_doubling(chunks, op)
        ring = allreduce_ring(chunks, op)
        assert set(bf) == set(ring) == {0.0}
