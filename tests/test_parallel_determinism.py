"""Bitwise determinism of the multicore serving paths across worker counts.

The sharding contract (Benmouhoub et al.'s constraint: parallel execution
must not perturb the numerics): ``reduce_many``, ``evaluate_ensemble`` and
the grid sweeps split *independent* work items into contiguous shards, so
the parallel result — values **and** decisions — must be byte-identical to
the serial path at every worker count.  These property tests pin that
across workers ∈ {1, 2, 4}, plus a crashed-worker recovery check.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.experiments.grid import grid_sweep
from repro.mpi.comm import SimComm
from repro.selection.selector import AdaptiveReducer
from repro.summation import get_algorithm
from repro.trees import evaluate_ensemble, random_shape
from repro.util.pool import get_pool
from repro.util.rng import permutation_stream

WORKER_COUNTS = (1, 2, 4)


def _bits(x: float) -> bytes:
    return np.float64(x).tobytes()


def _uniform_stream(n_items: int = 16, n_ranks: int = 4, width: int = 96):
    rng = np.random.default_rng(1234)
    return [
        [
            rng.uniform(-1.0, 1.0, width) * 10.0 ** rng.integers(-6, 7, size=width)
            for _ in range(n_ranks)
        ]
        for _ in range(n_items)
    ]


def _ragged_stream(n_items: int = 12, n_ranks: int = 3):
    rng = np.random.default_rng(77)
    return [
        [rng.random(int(rng.integers(5, 120))) for _ in range(n_ranks)]
        for _ in range(n_items)
    ]


class TestReduceManyDeterminism:
    def _run(self, batches, tree="balanced"):
        comm = SimComm(len(batches[0]))
        per_worker = []
        for w in WORKER_COUNTS:
            reducer = AdaptiveReducer(comm, threshold=1e-13)
            per_worker.append(
                reducer.reduce_many(batches, tree=tree, workers=w)
            )
        base = per_worker[0]
        for results in per_worker[1:]:
            assert len(results) == len(base)
            for a, b in zip(base, results):
                assert _bits(a.value) == _bits(b.value)
                # decision.predicted_std is a cache-bucket representative and
                # so depends on stream order; the selected code must not.
                assert a.decision.code == b.decision.code
        return base

    def test_uniform_stream_bitwise_identical(self):
        self._run(_uniform_stream())

    def test_ragged_stream_bitwise_identical(self):
        self._run(_ragged_stream())

    def test_parallel_matches_standalone_reduce(self):
        batches = _uniform_stream(n_items=8)
        comm = SimComm(4)
        reducer = AdaptiveReducer(comm, threshold=1e-13)
        parallel = reducer.reduce_many(batches, tree="balanced", workers=2)
        for chunks, result in zip(batches, parallel):
            solo = reducer.reduce(chunks, tree="balanced")
            assert _bits(solo.value) == _bits(result.value)
            assert solo.decision.code == result.decision.code

    def test_threshold_override_consistent(self):
        batches = _uniform_stream(n_items=6)
        comm = SimComm(4)
        reducer = AdaptiveReducer(comm, threshold=1e-13)
        serial = reducer.reduce_many(batches, threshold=1e-6, workers=1)
        parallel = reducer.reduce_many(batches, threshold=1e-6, workers=2)
        for a, b in zip(serial, parallel):
            assert _bits(a.value) == _bits(b.value)
            assert a.decision.code == b.decision.code


class TestEnsembleDeterminism:
    @pytest.mark.parametrize("code", ["ST", "K", "CP"])
    @pytest.mark.parametrize("shape_name", ["balanced", "serial", "random"])
    def test_seeded_ensemble_bitwise_identical(self, code, shape_name):
        n, n_trees = 256, 24
        rng = np.random.default_rng(5)
        data = rng.uniform(-1.0, 1.0, n) * 10.0 ** rng.integers(-6, 7, size=n)
        alg = get_algorithm(code)
        shape = random_shape(n, seed=11) if shape_name == "random" else shape_name
        outs = [
            evaluate_ensemble(data, shape, alg, n_trees, seed=99, workers=w)
            for w in WORKER_COUNTS
        ]
        for other in outs[1:]:
            assert outs[0].tobytes() == other.tobytes()

    def test_explicit_perms_bitwise_identical(self):
        n, n_trees = 128, 20
        rng = np.random.default_rng(8)
        data = rng.uniform(-1.0, 1.0, n) * 10.0 ** rng.integers(-3, 4, size=n)
        perms = np.stack(list(permutation_stream(n, n_trees, seed=3)))
        alg = get_algorithm("K")
        outs = [
            evaluate_ensemble(data, "balanced", alg, n_trees, perms=perms, workers=w)
            for w in WORKER_COUNTS
        ]
        for other in outs[1:]:
            assert outs[0].tobytes() == other.tobytes()

    def test_deterministic_algorithm_short_circuits(self):
        # PR is tree-independent: workers must not change the tiled value
        rng = np.random.default_rng(2)
        data = rng.random(64)
        alg = get_algorithm("PR")
        a = evaluate_ensemble(data, "balanced", alg, 12, seed=1, workers=4)
        b = evaluate_ensemble(data, "balanced", alg, 12, seed=1, workers=1)
        assert a.tobytes() == b.tobytes()


class TestGridDeterminism:
    def test_grid_sweep_bitwise_identical_across_workers(self):
        kwargs = dict(
            n_values=(64,),
            k_values=(1e3,),
            dr_values=(0, 4, 8),
            codes=("ST", "K"),
            n_trees=12,
            seed=20150908,
            shape="balanced",
        )
        serial = grid_sweep(workers=1, **kwargs)
        parallel = grid_sweep(workers=2, **kwargs)
        assert len(serial) == len(parallel) == 3
        for a, b in zip(serial, parallel):
            assert a.n == b.n and a.dynamic_range == b.dynamic_range
            assert _bits(a.achieved_condition) == _bits(b.achieved_condition)
            for code in ("ST", "K"):
                assert _bits(a.rel_std(code)) == _bits(b.rel_std(code))
                assert _bits(a.abs_std(code)) == _bits(b.abs_std(code))


def _crash(x: int) -> int:
    if x == 0:
        os._exit(3)
    return x


class TestCrashRecoveryMidService:
    def test_serving_survives_a_crashed_worker(self):
        pool = get_pool(2)
        restarts_before = pool.restarts
        with pytest.raises(BrokenProcessPool):
            pool.map(_crash, [1, 0, 2], chunksize=1)
        assert pool.restarts > restarts_before
        # the very next serving call heals the pool and stays bitwise-correct
        batches = _uniform_stream(n_items=8)
        comm = SimComm(4)
        reducer = AdaptiveReducer(comm, threshold=1e-13)
        serial = reducer.reduce_many(batches, tree="balanced", workers=1)
        parallel = reducer.reduce_many(batches, tree="balanced", workers=2)
        for a, b in zip(serial, parallel):
            assert _bits(a.value) == _bits(b.value)
            assert a.decision.code == b.decision.code


def _wide_stream(n_items: int = 24, n_ranks: int = 4, width: int = 512):
    rng = np.random.default_rng(4242)
    return [
        [
            rng.uniform(-1.0, 1.0, width) * 10.0 ** rng.integers(-6, 7, size=width)
            for _ in range(n_ranks)
        ]
        for _ in range(n_items)
    ]


class TestArenaServing:
    """The persistent-arena dispatch: reuse, regrow and crash epochs must all
    stay invisible to the numerics."""

    def test_arena_reused_across_serving_calls(self):
        from repro.util.pool import arena_info

        batches = _uniform_stream(n_items=8)
        comm = SimComm(4)
        reducer = AdaptiveReducer(comm, threshold=1e-13)
        reducer.reduce_many(batches, tree="balanced", workers=2)
        before = arena_info()
        assert set(before) == {"input", "result"}
        reducer.reduce_many(batches, tree="balanced", workers=2)
        # warm steady state: same segments, same generation, no regrow
        assert arena_info() == before

    def test_arena_regrow_epoch_stays_bitwise(self):
        from repro.util.pool import arena_info

        comm = SimComm(4)
        reducer = AdaptiveReducer(comm, threshold=1e-13)
        small = _uniform_stream(n_items=8)
        reducer.reduce_many(small, tree="balanced", workers=2)
        gen_before = arena_info()["input"]["generation"]
        big = _wide_stream()  # ~400 KiB of operands: forces an arena regrow
        serial = reducer.reduce_many(big, tree="balanced", workers=1)
        parallel = reducer.reduce_many(big, tree="balanced", workers=2)
        assert arena_info()["input"]["generation"] > gen_before
        for a, b in zip(serial, parallel):
            assert _bits(a.value) == _bits(b.value)
            assert a.decision.code == b.decision.code

    def test_crash_recovery_reattaches_and_stays_bitwise(self):
        comm = SimComm(4)
        reducer = AdaptiveReducer(comm, threshold=1e-13)
        reducer.reduce_many(_uniform_stream(n_items=8), tree="balanced", workers=2)
        pool = get_pool(2)
        with pytest.raises(BrokenProcessPool):
            pool.map(_crash, [1, 0, 2], chunksize=1)
        # replacement workers hold no cached attachments: the next dispatch
        # re-attaches the (possibly regrown) arena from the handle alone
        big = _wide_stream(n_items=16)
        serial = reducer.reduce_many(big, tree="balanced", workers=1)
        parallel = reducer.reduce_many(big, tree="balanced", workers=2)
        for a, b in zip(serial, parallel):
            assert _bits(a.value) == _bits(b.value)
            assert a.decision.code == b.decision.code

    def test_fused_shard_kernel_bitwise_across_thresholds(self):
        # sweeping the tolerance forces different algebras through the fused
        # per-shard C kernel (ST/K/KBN/CP/DD all reachable)
        batches = _uniform_stream(n_items=12, n_ranks=5, width=64)
        comm = SimComm(5)
        for thr in (1e-6, 1e-13, 1e-30):
            reducer = AdaptiveReducer(comm, threshold=thr)
            serial = reducer.reduce_many(batches, tree="balanced", workers=1)
            parallel = reducer.reduce_many(batches, tree="balanced", workers=2)
            for a, b in zip(serial, parallel):
                assert _bits(a.value) == _bits(b.value)
                assert a.decision.code == b.decision.code

    def test_parallel_calls_populate_parent_decision_cache(self):
        # the parent replays selection from arena-returned sketches, so the
        # serving cache warms up identically to a serial run
        batches = _uniform_stream(n_items=10)
        comm = SimComm(4)
        reducer = AdaptiveReducer(comm, threshold=1e-13)
        reducer.reduce_many(batches, tree="balanced", workers=2)
        info = reducer.decision_cache_info()
        assert info["hits"] + info["misses"] == len(batches)
        assert info["misses"] >= 1
