"""Reproducible descriptive statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.summation.moments import (
    reproducible_mean,
    reproducible_norm2,
    reproducible_std,
    reproducible_sum,
    reproducible_variance,
)


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    return rng.uniform(-5.0, 5.0, 4001) * 2.0 ** rng.integers(-10, 11, 4001)


class TestInvariance:
    @pytest.mark.parametrize(
        "fn",
        [
            reproducible_sum,
            reproducible_mean,
            reproducible_variance,
            reproducible_std,
            reproducible_norm2,
        ],
    )
    def test_permutation_and_chunking_invariant(self, data, fn):
        ref = fn(data)
        rng = np.random.default_rng(1)
        for _ in range(5):
            perm = rng.permutation(data.size)
            assert fn(data[perm]) == ref
        cuts = np.sort(rng.choice(data.size, size=6, replace=False))
        assert fn(np.split(data, cuts)) == ref

    def test_numpy_is_not_invariant_here(self, data):
        """Motivation check: plain numpy results do drift under reorder for
        at least one of many shuffles (if not, the workload is too easy)."""
        rng = np.random.default_rng(2)
        base = float(np.sum(data))
        assert any(
            float(np.sum(data[rng.permutation(data.size)])) != base for _ in range(20)
        )


class TestAccuracy:
    def test_mean_close_to_numpy(self, data):
        assert reproducible_mean(data) == pytest.approx(float(np.mean(data)), rel=1e-12)

    def test_variance_close_to_numpy(self, data):
        assert reproducible_variance(data) == pytest.approx(
            float(np.var(data)), rel=1e-10
        )
        assert reproducible_variance(data, ddof=1) == pytest.approx(
            float(np.var(data, ddof=1)), rel=1e-10
        )

    def test_norm_close_to_numpy(self, data):
        assert reproducible_norm2(data) == pytest.approx(
            float(np.linalg.norm(data)), rel=1e-12
        )

    def test_variance_nonnegative_under_cancellation(self):
        x = np.full(1000, 1e8)
        assert reproducible_variance(x) == 0.0
        assert reproducible_std(x) == 0.0

    def test_constant_shifted(self):
        x = np.full(100, 3.25)
        assert reproducible_mean(x) == 3.25
        assert reproducible_variance(x) == 0.0


class TestValidation:
    def test_empty(self):
        assert reproducible_sum(np.array([])) == 0.0
        with pytest.raises(ValueError):
            reproducible_mean(np.array([]))
        with pytest.raises(ValueError):
            reproducible_variance(np.array([1.0]), ddof=1)
