"""Text renderers."""

from __future__ import annotations

import math

import pytest

from repro.metrics.errors import BoxplotSummary
from repro.viz import (
    render_boxplot_panel,
    render_boxplot_row,
    render_category_grid,
    render_table,
    render_value_grid,
    shade_char,
)


class TestShade:
    def test_monotone_ramp(self):
        chars = [shade_char(10.0**d, -10, 0) for d in range(-10, 1)]
        ramp = " .:-=+*#%@"
        indices = [ramp.index(c) for c in chars]
        assert indices == sorted(indices)
        assert chars[0] == " " and chars[-1] == "@"

    def test_zero_blank(self):
        assert shade_char(0.0, -10, 0) == " "

    def test_clamping(self):
        assert shade_char(1e5, -10, 0) == "@"
        assert shade_char(1e-30, -10, 0) == " "

    def test_validation(self):
        with pytest.raises(ValueError):
            shade_char(-1.0, -10, 0)
        with pytest.raises(ValueError):
            shade_char(1.0, 0, 0)


class TestValueGrid:
    def test_renders_all_cells(self):
        text = render_value_grid(
            ["r1", "r2"],
            ["c1", "c2"],
            {("r1", "c1"): 1e-5, ("r1", "c2"): 1e-3, ("r2", "c1"): 0.0, ("r2", "c2"): math.nan},
            title="demo",
        )
        assert "demo" in text
        assert "1.0e-05" in text and "1.0e-03" in text
        assert "n/a" in text
        assert "?" not in text

    def test_missing_cells_marked(self):
        text = render_value_grid(["r"], ["a", "b"], {("r", "a"): 1.0})
        assert "?" in text

    def test_all_zero_grid(self):
        text = render_value_grid(["r"], ["a"], {("r", "a"): 0.0})
        assert "0" not in text.split("\n")[1] or True  # renders without error


class TestCategoryGrid:
    def test_labels_positioned(self):
        text = render_category_grid(
            ["k1"], ["d1", "d2"], {("k1", "d1"): "ST", ("k1", "d2"): "PR"}, title="t"
        )
        lines = text.split("\n")
        assert lines[0] == "t"
        assert "ST" in lines[2] and "PR" in lines[2]

    def test_missing_cells(self):
        text = render_category_grid(["r"], ["c"], {})
        assert "?" in text


class TestBoxplots:
    def test_row_geometry(self):
        s = BoxplotSummary(q1=1e-8, median=1e-7, q3=1e-6, whisker_low=1e-9, whisker_high=1e-5, outliers=(1e-4,))
        row = render_boxplot_row("K", s, lo=-10, hi=-3)
        assert row.count("M") == 1
        assert "o" in row
        assert "=" in row and "-" in row

    def test_all_zero_annotated(self):
        s = BoxplotSummary(0.0, 0.0, 0.0, 0.0, 0.0, ())
        row = render_boxplot_row("PR", s, lo=-10, hi=-3)
        assert "(all zero)" in row

    def test_panel_shared_axis(self):
        entries = [
            ("ST", BoxplotSummary(1e-6, 1e-5, 1e-4, 1e-7, 1e-3, ())),
            ("PR", BoxplotSummary(0.0, 0.0, 0.0, 0.0, 0.0, ())),
        ]
        text = render_boxplot_panel("panel", entries)
        assert text.startswith("panel")
        assert len(text.split("\n")) == 4


class TestTables:
    def test_alignment_and_formatting(self):
        text = render_table(
            ["name", "value"], [["a", 1.23456789], ["bb", 2]], title="T"
        )
        lines = text.split("\n")
        assert lines[0] == "T"
        assert "1.235" in text  # %.4g
        assert set(lines[2]) <= {"-", " "}

    def test_empty_rows(self):
        text = render_table(["h1", "h2"], [])
        assert "h1" in text
