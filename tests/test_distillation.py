"""AccSum distillation: faithful rounding + fixed-schedule determinism."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import exact_sum_fraction
from repro.summation import accsum, get_algorithm
from repro.summation.distillation import DistillationAccumulator


def _is_faithful(v: float, exact: Fraction) -> bool:
    """v is a faithful rounding of exact: no double lies strictly between."""
    if Fraction(v) == exact:
        return True
    if Fraction(v) < exact:
        return Fraction(math.nextafter(v, math.inf)) >= exact
    return Fraction(math.nextafter(v, -math.inf)) <= exact


class TestAccSum:
    @pytest.mark.parametrize("seed", range(6))
    def test_faithful_on_hostile_sets(self, seed):
        rng = np.random.default_rng(seed)
        base = rng.uniform(1, 2, 700) * 2.0 ** rng.integers(-25, 26, 700)
        x = np.concatenate([base, -base, rng.uniform(-1, 1, 301)])
        rng.shuffle(x)
        assert _is_faithful(accsum(x), exact_sum_fraction(x))

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e30, max_value=1e30),
                    min_size=0, max_size=60))
    @settings(max_examples=40)
    def test_faithful_property(self, xs):
        x = np.array(xs, dtype=np.float64)
        assert _is_faithful(accsum(x), exact_sum_fraction(x))

    def test_permutation_deterministic(self):
        rng = np.random.default_rng(9)
        x = rng.uniform(-1e8, 1e8, 999)
        ref = accsum(x)
        for _ in range(5):
            assert accsum(x[rng.permutation(x.size)]) == ref

    def test_edge_cases(self):
        assert accsum(np.array([])) == 0.0
        assert accsum(np.array([3.5])) == 3.5
        assert accsum(np.zeros(100)) == 0.0
        assert accsum(np.array([1e308, -1e308, 1.0])) == 1.0

    def test_registered_as_algorithm(self):
        alg = get_algorithm("AS")
        assert alg.deterministic
        assert alg.cost_rank >= get_algorithm("CP").cost_rank

    def test_accumulator_buffers_and_distills(self):
        rng = np.random.default_rng(10)
        x = rng.uniform(-1, 1, 200)
        a = DistillationAccumulator()
        a.add_array(x[:100])
        b = DistillationAccumulator()
        b.add_array(x[100:])
        a.merge(b)
        assert a.result() == accsum(x)

    def test_beats_cp_on_adversarial_input(self):
        # a case where CP's final rounding is off but AccSum is faithful:
        # huge cancelling mass plus a tail straddling a rounding boundary
        rng = np.random.default_rng(11)
        base = rng.uniform(1, 2, 4000) * 2.0 ** rng.integers(0, 45, 4000)
        x = np.concatenate([base, -base, rng.uniform(-1e-10, 1e-10, 1001)])
        rng.shuffle(x)
        exact = exact_sum_fraction(x)
        assert _is_faithful(accsum(x), exact)
