"""The binary wire format under test: frame round-trips, zero-copy
payload views, exhaustive malformed-frame rejection (truncations, bad
magic/version/flags, absurd declared lengths, dtype/shape mismatches),
and the daemon's binary endpoints against bitwise serial recomputation —
including mixed binary/JSON pipelining on one keep-alive connection.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.mpi import SimComm
from repro.obs import get_registry
from repro.selection import AdaptiveReducer
from repro.serve import ReproServeDaemon
from repro.serve.frames import (
    FRAME_CONTENT_TYPE,
    FRAME_MAGIC,
    FRAME_VERSION,
    KIND_REQUEST,
    KIND_RESPONSE,
    PREAMBLE_SIZE,
    WIRE_DTYPES,
    encode_frame,
    parse_frame,
    payload_array,
)
from repro.serve.protocol import HttpError, KeepAliveClient, encode_values


@pytest.fixture
def global_obs():
    """The process-global registry, enabled and clean for one test."""
    reg = get_registry()
    reg.reset()
    reg.enable()
    yield reg
    reg.disable()
    reg.reset()


def _request_frame(values: np.ndarray, **header_extra) -> bytes:
    arr = np.ascontiguousarray(values)
    header = {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        **header_extra,
    }
    return encode_frame(header, arr, kind=KIND_REQUEST)


# ---------------------------------------------------------------------------
# frame encode/parse round-trips
# ---------------------------------------------------------------------------


class TestFrameRoundTrip:
    def test_roundtrip_preserves_bits_and_header(self):
        vec = np.array([1.5, -2.25, 1e-300, np.pi], dtype="<f8")
        raw = _request_frame(vec, threshold=1e-10)
        header, payload = parse_frame(raw, kind=KIND_REQUEST)
        assert header["threshold"] == 1e-10  # repro: allow[FP007] -- exact JSON round-trip of the frame header is the property under test
        arr = payload_array(header, payload)
        assert arr.tobytes() == vec.tobytes()

    def test_payload_is_zero_copy_view(self):
        vec = np.arange(64, dtype="<f8")
        raw = bytearray(_request_frame(vec))
        header, payload = parse_frame(raw, kind=KIND_REQUEST)
        arr = payload_array(header, payload)
        # the ndarray aliases the frame bytes — no intermediate copy
        assert np.shares_memory(arr, np.frombuffer(payload, dtype=np.uint8))
        del arr, payload  # release exports so the bytearray stays usable

    def test_payload_offset_is_8_aligned(self):
        for n in (0, 1, 7, 64):
            raw = _request_frame(np.arange(n, dtype="<f8"), pad="x" * n)
            head_len = int.from_bytes(raw[8:12], "little")
            assert (PREAMBLE_SIZE + head_len) % 8 == 0

    def test_all_wire_dtypes_roundtrip(self):
        for dtype_str in WIRE_DTYPES:
            vec = np.linspace(-3, 3, 40).astype(dtype_str)
            header, payload = parse_frame(
                _request_frame(vec), kind=KIND_REQUEST
            )
            arr = payload_array(header, payload)
            assert arr.dtype == np.dtype(dtype_str)
            assert arr.tobytes() == vec.tobytes()

    def test_2d_shape_roundtrip(self):
        mat = np.arange(24, dtype="<f8").reshape(4, 6)
        header, payload = parse_frame(_request_frame(mat), kind=KIND_REQUEST)
        arr = payload_array(header, payload)
        assert arr.shape == (4, 6)
        np.testing.assert_array_equal(arr, mat)

    def test_empty_payload(self):
        header, payload = parse_frame(
            _request_frame(np.empty(0, dtype="<f8")), kind=KIND_REQUEST
        )
        assert payload_array(header, payload).size == 0

    def test_unaligned_payload_copies_and_counts(self, global_obs):
        vec = np.arange(16, dtype="<f8")
        # deliberately misalign: header padded to 8n, then shift by 4
        frame = _request_frame(vec)
        shifted = bytearray(4) + bytearray(frame)
        view = memoryview(shifted)[4:]
        header, payload = parse_frame(view, kind=KIND_REQUEST)
        arr = payload_array(header, payload)
        assert arr.tobytes() == vec.tobytes()
        assert not np.shares_memory(arr, np.frombuffer(payload, np.uint8))
        snap = global_obs.snapshot()["gauges"]["repro_serve_bytes_copied"]
        assert snap[0]["value"] == vec.nbytes


# ---------------------------------------------------------------------------
# malformed frames: every shape of junk answers 400, nothing hangs
# ---------------------------------------------------------------------------


class TestMalformedFrames:
    def test_truncation_sweep_always_clean_400(self):
        """Every proper prefix of a valid frame is rejected cleanly."""
        frame = _request_frame(np.arange(12, dtype="<f8"), threshold=1e-9)
        for i in range(len(frame)):
            with pytest.raises(HttpError) as exc:
                parse_frame(frame[:i], kind=KIND_REQUEST)
            assert exc.value.status == 400

    def test_bad_magic(self):
        frame = bytearray(_request_frame(np.arange(4, dtype="<f8")))
        frame[:4] = b"EVIL"
        with pytest.raises(HttpError, match="magic"):
            parse_frame(bytes(frame), kind=KIND_REQUEST)

    def test_unknown_version(self):
        frame = bytearray(_request_frame(np.arange(4, dtype="<f8")))
        frame[4] = FRAME_VERSION + 1
        with pytest.raises(HttpError, match="version"):
            parse_frame(bytes(frame), kind=KIND_REQUEST)

    def test_reserved_flags_must_be_zero(self):
        frame = bytearray(_request_frame(np.arange(4, dtype="<f8")))
        frame[6] = 1
        with pytest.raises(HttpError, match="flags"):
            parse_frame(bytes(frame), kind=KIND_REQUEST)

    def test_kind_mismatch(self):
        frame = encode_frame(
            {"dtype": "<f8", "shape": [0]}, kind=KIND_RESPONSE
        )
        with pytest.raises(HttpError, match="kind"):
            parse_frame(frame, kind=KIND_REQUEST)

    def test_absurd_header_length(self):
        frame = bytearray(_request_frame(np.arange(4, dtype="<f8")))
        frame[8:12] = (1 << 30).to_bytes(4, "little")
        with pytest.raises(HttpError) as exc:
            parse_frame(bytes(frame), kind=KIND_REQUEST)
        assert exc.value.status == 400

    def test_length_closure_over_and_under(self):
        frame = _request_frame(np.arange(4, dtype="<f8"))
        for mutated in (frame + b"\0", frame[:-1]):
            with pytest.raises(HttpError) as exc:
                parse_frame(mutated, kind=KIND_REQUEST)
            assert exc.value.status == 400

    def test_non_json_header(self):
        head = b"\xffnotjson"
        body = FRAME_MAGIC + bytes([FRAME_VERSION, KIND_REQUEST, 0, 0])
        body += len(head).to_bytes(4, "little") + (0).to_bytes(4, "little")
        with pytest.raises(HttpError, match="JSON"):
            parse_frame(body + head, kind=KIND_REQUEST)

    def test_non_object_header(self):
        head = b"[1,2,3]"
        body = FRAME_MAGIC + bytes([FRAME_VERSION, KIND_REQUEST, 0, 0])
        body += len(head).to_bytes(4, "little") + (0).to_bytes(4, "little")
        with pytest.raises(HttpError, match="object"):
            parse_frame(body + head, kind=KIND_REQUEST)

    @pytest.mark.parametrize("dtype", ["<i8", ">f8", "f16", "object", 8])
    def test_dtype_whitelist(self, dtype):
        header = {"dtype": dtype, "shape": [4]}
        payload = memoryview(bytes(32))
        with pytest.raises(HttpError, match="dtype"):
            payload_array(header, payload)

    @pytest.mark.parametrize(
        "shape",
        [None, "4", [], [-1], [2.5], [True], [2, "x"], [3], [1 << 40]],
    )
    def test_shape_rejections(self, shape):
        header = {"dtype": "<f8", "shape": shape}
        payload = memoryview(bytes(32))  # 4 float64s
        with pytest.raises(HttpError) as exc:
            payload_array(header, payload)
        assert exc.value.status == 400

    def test_absurd_shape_never_allocates(self):
        # a declared petabyte shape must be rejected by arithmetic alone
        header = {"dtype": "<f8", "shape": [1 << 47]}
        with pytest.raises(HttpError, match="does not match"):
            payload_array(header, memoryview(bytes(16)))


# ---------------------------------------------------------------------------
# daemon integration: binary endpoints, bitwise identity, pipelining
# ---------------------------------------------------------------------------


def _serial_hex(vec: np.ndarray, ranks: int) -> str:
    comm = SimComm(ranks)
    result = AdaptiveReducer(comm).reduce(comm.scatter_array(vec))
    return float(result.value).hex()


def _response_array(body) -> "tuple[dict, np.ndarray]":
    header, payload = parse_frame(
        bytes(body), kind=KIND_RESPONSE, what="response"
    )
    return header, payload_array(header, payload, what="response")


class TestDaemonBinary:
    RANKS = 8

    def _vec(self, n=512, seed=3):
        rng = np.random.default_rng(seed)
        return rng.normal(size=n) * 10.0 ** rng.integers(-8, 8, size=n)

    def test_binary_reduce_bitwise_equals_serial_and_json(self, global_obs):
        vec = self._vec()

        async def run():
            async with ReproServeDaemon(ranks=self.RANKS) as daemon:
                async with KeepAliveClient(daemon.host, daemon.port) as client:
                    r = await client.request(
                        "POST",
                        "/v1/reduce",
                        json.dumps({"values_b64": encode_values(vec)}).encode(),
                    )
                    assert r.status == 200
                    json_hex = r.json()["value_hex"]
                    r = await client.request(
                        "POST",
                        "/v1/reduce",
                        _request_frame(vec),
                        content_type=FRAME_CONTENT_TYPE,
                    )
                    assert r.status == 200
                    assert r.headers["content-type"] == FRAME_CONTENT_TYPE
                    header, arr = _response_array(r.body)
                    return json_hex, header, float(arr[0]).hex()

        json_hex, header, binary_hex = asyncio.run(run())
        assert binary_hex == json_hex == _serial_hex(vec, self.RANKS)
        assert header["status"] == 200
        assert header["algorithm"]
        assert header["n"] == vec.size
        codecs = {
            s["labels"]["codec"]: s["value"]
            for s in global_obs.snapshot()["counters"][
                "repro_serve_codec_total"
            ]
        }
        assert codecs == {"json": 1, "binary": 1}

    def test_binary_reduce_many_bitwise(self):
        vecs = [self._vec(seed=s) for s in range(5)]
        mat = np.ascontiguousarray(np.stack(vecs))

        async def run():
            async with ReproServeDaemon(ranks=self.RANKS) as daemon:
                async with KeepAliveClient(daemon.host, daemon.port) as client:
                    r = await client.request(
                        "POST",
                        "/v1/reduce_many",
                        _request_frame(mat),
                        content_type=FRAME_CONTENT_TYPE,
                    )
                    assert r.status == 200, bytes(r.body)
                    header, arr = _response_array(r.body)
                    return header, arr.copy()

        header, values = asyncio.run(run())
        assert header["shape"] == [len(vecs)]
        assert len(header["results"]) == len(vecs)
        for v, vec in zip(values, vecs):
            assert float(v).hex() == _serial_hex(vec, self.RANKS)

    def test_binary_f4_selects_at_its_own_roundoff(self):
        """fp32 wire inputs must reach selection as fp32 (not a silent
        upcast): the profile keys off the input dtype's unit roundoff."""
        vec = self._vec(n=2048).astype("<f4")  # repro: allow[FP005] -- fp32 wire payloads selecting at their own roundoff is the behaviour under test

        async def run():
            async with ReproServeDaemon(ranks=self.RANKS) as daemon:
                async with KeepAliveClient(daemon.host, daemon.port) as client:
                    r4 = await client.request(
                        "POST",
                        "/v1/reduce",
                        _request_frame(vec),
                        content_type=FRAME_CONTENT_TYPE,
                    )
                    assert r4.status == 200
                    # a response body views the client's receive buffer
                    # and is only valid until the next request: parse
                    # each one before pipelining the next
                    h4, _ = _response_array(r4.body)
                    r8 = await client.request(
                        "POST",
                        "/v1/reduce",
                        _request_frame(vec.astype("<f8")),
                        content_type=FRAME_CONTENT_TYPE,
                    )
                    assert r8.status == 200
                    h8, _ = _response_array(r8.body)
                    return h4, h8

        h4, h8 = asyncio.run(run())
        # same data, different wire precision: the f4 request must be
        # allowed to pick a different (cheaper/stronger) algorithm tier
        # than the f8 one — equality of predicted_std would mean the
        # daemon upcast the payload before profiling
        assert h4["predicted_std"] != h8["predicted_std"]

    def test_binary_wrong_ndim_400(self):
        mat = np.arange(24, dtype="<f8").reshape(4, 6)
        vec = np.arange(8, dtype="<f8")

        async def run():
            async with ReproServeDaemon(ranks=self.RANKS) as daemon:
                async with KeepAliveClient(daemon.host, daemon.port) as client:
                    r1 = await client.request(
                        "POST",
                        "/v1/reduce",
                        _request_frame(mat),
                        content_type=FRAME_CONTENT_TYPE,
                    )
                    one = (r1.status, r1.json())  # before the body recycles
                    r2 = await client.request(
                        "POST",
                        "/v1/reduce_many",
                        _request_frame(vec),
                        content_type=FRAME_CONTENT_TYPE,
                    )
                    return one, (r2.status, r2.json())

        (s1, b1), (s2, b2) = asyncio.run(run())
        assert s1 == 400 and "1-D" in b1["error"]
        assert s2 == 400 and "2-D" in b2["error"]

    def test_ensemble_rejects_binary(self):
        async def run():
            async with ReproServeDaemon(ranks=self.RANKS) as daemon:
                async with KeepAliveClient(daemon.host, daemon.port) as client:
                    r = await client.request(
                        "POST",
                        "/v1/ensemble",
                        _request_frame(np.arange(8, dtype="<f8")),
                        content_type=FRAME_CONTENT_TYPE,
                    )
                    return r.status, r.json()

        status, body = asyncio.run(run())
        assert status == 400
        assert "JSON-only" in body["error"]

    def test_mixed_codec_pipelining_with_errors(self):
        """Binary junk, JSON junk, and valid requests of both codecs
        interleave on ONE keep-alive connection; every error is a clean
        400 and framing never desynchronises."""
        vec = self._vec(n=128)
        expected_hex = _serial_hex(vec, self.RANKS)

        async def run():
            async with ReproServeDaemon(ranks=self.RANKS) as daemon:
                async with KeepAliveClient(daemon.host, daemon.port) as client:
                    outcomes = []
                    # valid binary
                    r = await client.request(
                        "POST", "/v1/reduce", _request_frame(vec),
                        content_type=FRAME_CONTENT_TYPE,
                    )
                    _, arr = _response_array(r.body)
                    outcomes.append((r.status, float(arr[0]).hex()))
                    # truncated binary frame (bad length closure)
                    r = await client.request(
                        "POST", "/v1/reduce", _request_frame(vec)[:-3],
                        content_type=FRAME_CONTENT_TYPE,
                    )
                    outcomes.append((r.status, None))
                    # JSON junk
                    r = await client.request(
                        "POST", "/v1/reduce", b"{not json",
                    )
                    outcomes.append((r.status, None))
                    # bad magic
                    r = await client.request(
                        "POST", "/v1/reduce", b"X" * 64,
                        content_type=FRAME_CONTENT_TYPE,
                    )
                    outcomes.append((r.status, None))
                    # valid JSON after all that, same connection
                    r = await client.request(
                        "POST",
                        "/v1/reduce",
                        json.dumps(
                            {"values_b64": encode_values(vec)}
                        ).encode(),
                    )
                    outcomes.append((r.status, r.json()["value_hex"]))
                    # valid binary again
                    r = await client.request(
                        "POST", "/v1/reduce", _request_frame(vec),
                        content_type=FRAME_CONTENT_TYPE,
                    )
                    _, arr = _response_array(r.body)
                    outcomes.append((r.status, float(arr[0]).hex()))
                    return outcomes

        outcomes = asyncio.run(run())
        assert [s for s, _ in outcomes] == [200, 400, 400, 400, 200, 200]
        assert outcomes[0][1] == expected_hex
        assert outcomes[4][1] == expected_hex
        assert outcomes[5][1] == expected_hex

    def test_binary_reduce_many_all_or_nothing_429(self):
        mat = np.ascontiguousarray(
            np.stack([self._vec(n=64, seed=s) for s in range(6)])
        )

        async def run():
            async with ReproServeDaemon(
                ranks=self.RANKS, queue_size=4, max_linger_us=50_000.0
            ) as daemon:
                async with KeepAliveClient(daemon.host, daemon.port) as client:
                    r = await client.request(
                        "POST",
                        "/v1/reduce_many",
                        _request_frame(mat),
                        content_type=FRAME_CONTENT_TYPE,
                    )
                    return r.status, r.json()

        status, body = asyncio.run(run())
        assert status == 429
        assert "cannot" in body["error"]
