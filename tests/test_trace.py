"""Reduction tracing and bitwise replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import zero_sum_set
from repro.mpi import ReductionTrace, SimComm, make_reduction_op, record, replay
from repro.summation import get_algorithm
from repro.trees import balanced, random_shape, serial


@pytest.fixture
def setup():
    data = zero_sum_set(4000, dr=24, seed=0)
    comm = SimComm(8)
    return comm.scatter_array(data)


class TestRecordReplay:
    @pytest.mark.parametrize("code", ["ST", "K", "CP", "PR"])
    @pytest.mark.parametrize("shape_fn", [balanced, serial])
    def test_roundtrip_bitwise(self, setup, code, shape_fn):
        op = make_reduction_op(get_algorithm(code))
        value, trace = record(setup, op, shape_fn(8))
        assert replay(trace) == value

    def test_json_roundtrip(self, setup):
        op = make_reduction_op(get_algorithm("ST"))
        value, trace = record(setup, op, random_shape(8, seed=1))
        loaded = ReductionTrace.from_json(trace.to_json())
        assert replay(loaded) == value

    def test_trace_captures_nondeterministic_run(self):
        """The debugging workflow: trap a suspicious nondeterministic run's
        tree, replay it deterministically."""
        data = zero_sum_set(4000, dr=24, seed=2)
        comm = SimComm(12, seed=3)
        chunks = comm.scatter_array(data)
        op = make_reduction_op(get_algorithm("ST"))
        res = comm.reduce_nondeterministic(chunks, op, jitter=0.5)
        value, trace = record(chunks, op, res.tree)
        assert value == res.value
        assert replay(trace) == res.value

    def test_verify_detects_tampering(self, setup):
        op = make_reduction_op(get_algorithm("ST"))
        _, trace = record(setup, op, balanced(8))
        broken = ReductionTrace.from_json(
            trace.to_json().replace(trace.recorded_value_hex, (1.5).hex())
        )
        with pytest.raises(RuntimeError, match="replay mismatch"):
            replay(broken)
        # verify=False returns the recomputed value regardless
        assert replay(broken, verify=False) == replay(trace)

    def test_pr_context_preserved(self, setup):
        """PR's bin exponent must survive the round trip (it is part of the
        bitwise contract)."""
        op = make_reduction_op(get_algorithm("PR"))
        value, trace = record(setup, op, balanced(8))
        assert trace.context_max_abs is not None
        assert replay(trace) == value

    def test_mismatched_tree_rejected(self, setup):
        op = make_reduction_op(get_algorithm("ST"))
        with pytest.raises(ValueError, match="leaf count"):
            record(setup, op, balanced(5))

    def test_corrupt_chunk_lengths_rejected(self, setup):
        op = make_reduction_op(get_algorithm("ST"))
        _, trace = record(setup, op, balanced(8))
        bad = ReductionTrace(
            algorithm_code=trace.algorithm_code,
            n_ranks=trace.n_ranks,
            schedule=trace.schedule,
            chunk_lengths=tuple([*trace.chunk_lengths[:-1], trace.chunk_lengths[-1] + 1]),
            data_hex=trace.data_hex,
            context_max_abs=trace.context_max_abs,
            recorded_value_hex=trace.recorded_value_hex,
        )
        with pytest.raises(ValueError, match="corrupt trace"):
            replay(bad)

    def test_single_rank_trace(self):
        op = make_reduction_op(get_algorithm("CP"))
        value, trace = record([np.array([1.0, 2.0, 3.0])], op, balanced(1))
        assert value == 6.0
        assert replay(trace) == 6.0
