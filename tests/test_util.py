"""Utility layer: RNG plumbing, chunking, timing, parallel map."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import (
    Stopwatch,
    TimingResult,
    derive_seed,
    iter_chunks,
    map_parallel,
    permutation_stream,
    resolve_rng,
    safe_block_len,
    spawn,
    split_indices,
    time_callable,
)


class TestRng:
    def test_resolve_int_deterministic(self):
        a = resolve_rng(5).random(3)
        b = resolve_rng(5).random(3)
        assert np.array_equal(a, b)

    def test_resolve_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert resolve_rng(g) is g

    def test_spawn_children_independent(self):
        kids = spawn(7, 3)
        draws = [g.random() for g in kids]
        assert len(set(draws)) == 3

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(1, -1)

    def test_derive_seed_stable_and_sensitive(self):
        s1 = derive_seed(1, "fig7", 8)
        s2 = derive_seed(1, "fig7", 8)
        s3 = derive_seed(1, "fig7", 9)
        s4 = derive_seed(2, "fig7", 8)
        assert s1 == s2
        assert len({s1, s3, s4}) == 3
        assert 0 <= s1 < 2**63

    def test_permutation_stream_first_identity(self):
        perms = list(permutation_stream(5, 3, seed=1))
        assert perms[0].tolist() == [0, 1, 2, 3, 4]
        assert sorted(perms[1].tolist()) == [0, 1, 2, 3, 4]

    def test_permutation_stream_validation(self):
        with pytest.raises(ValueError):
            list(permutation_stream(-1, 2))


class TestChunking:
    def test_safe_block_len(self):
        assert safe_block_len(53, 63) == 1024
        with pytest.raises(ValueError):
            safe_block_len(64, 63)

    def test_iter_chunks_cover(self):
        slices = list(iter_chunks(10, 3))
        covered = []
        for s in slices:
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(10))

    def test_iter_chunks_bad_block(self):
        with pytest.raises(ValueError):
            list(iter_chunks(10, 0))

    def test_split_indices_balanced(self):
        parts = split_indices(17, 5)
        sizes = [s.stop - s.start for s in parts]
        assert sum(sizes) == 17
        assert max(sizes) - min(sizes) <= 1

    def test_split_indices_bad(self):
        with pytest.raises(ValueError):
            split_indices(5, 0)


class TestTiming:
    def test_time_callable_stats(self):
        r = time_callable(lambda: sum(range(100)), label="t", repeats=3, warmup=1)
        assert len(r.samples) == 3
        assert r.best <= r.mean <= r.worst

    def test_penalty(self):
        a = TimingResult("a", (1.0, 1.0))
        b = TimingResult("b", (2.0, 2.0))
        assert b.penalty_vs(a) == 2.0
        with pytest.raises(ZeroDivisionError):
            a.penalty_vs(TimingResult("z", (0.0,)))

    def test_bad_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        with sw:
            pass
        assert sw.elapsed >= first >= 0.0


class TestParallel:
    def test_serial_fallback_small(self):
        assert map_parallel(lambda x: x * 2, [1, 2], workers=8) == [2, 4]

    def test_parallel_matches_serial(self):
        items = list(range(12))
        serial = map_parallel(_square, items, workers=1)
        parallel = map_parallel(_square, items, workers=3)
        assert serial == parallel == [i * i for i in items]

    def test_order_preserved(self):
        out = map_parallel(_square, list(range(20)), workers=4)
        assert out == [i * i for i in range(20)]


def _square(x: int) -> int:
    return x * x
