"""Exhaustive tree-shape enumeration (the WoDet microscope)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.summation import get_algorithm
from repro.trees import (
    achievable_values,
    catalan,
    enumerate_shapes,
    evaluate_tree_generic,
    n_shapes,
)


class TestCatalan:
    def test_known_values(self):
        assert [catalan(i) for i in range(8)] == [1, 1, 2, 5, 14, 42, 132, 429]
        with pytest.raises(ValueError):
            catalan(-1)

    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 1), (3, 2), (4, 5), (8, 429)])
    def test_shape_counts(self, n, expected):
        assert n_shapes(n) == expected
        assert sum(1 for _ in enumerate_shapes(n)) == expected


class TestEnumeration:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_all_shapes_valid_and_distinct(self, n):
        seen = set()
        for tree in enumerate_shapes(n):
            tree.validate()
            assert tree.n_leaves == n
            seen.add(tree.schedule.tobytes())
        assert len(seen) == n_shapes(n)

    def test_limit(self):
        assert sum(1 for _ in enumerate_shapes(10, limit=7)) == 7

    def test_extremes_included(self):
        """The balanced and serial shapes appear among the enumeration."""
        x = np.arange(1.0, 9.0)
        alg = get_algorithm("EX")
        vals = {evaluate_tree_generic(t, x, alg) for t in enumerate_shapes(8)}
        assert vals == {36.0}  # sanity via the oracle

    def test_depth_range_spans_extremes(self):
        depths = {t.depth() for t in enumerate_shapes(6)}
        assert min(depths) == 3  # ceil(log2 6)
        assert max(depths) == 5  # serial


class TestValueSpace:
    def test_identical_values_still_multivalued(self):
        """[3]'s first study: eight *identical* values, different shapes,
        different sums — works when the value is inexact under doubling
        chains; use a value whose repeated addition rounds."""
        x = np.full(8, 0.1)
        space = achievable_values(x, get_algorithm("ST"))
        assert space.n_shapes == 429
        assert space.n_distinct >= 2

    def test_oracle_always_single_valued(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1e5, 1e5, 8)
        space = achievable_values(x, get_algorithm("EX"), n_assignments=10, seed=1)
        assert space.n_distinct == 1

    def test_pr_always_single_valued(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, 7) * 2.0 ** rng.integers(-20, 21, 7)
        space = achievable_values(x, get_algorithm("PR"), n_assignments=10, seed=3)
        assert space.n_distinct == 1

    def test_spread_and_sorted(self):
        x = np.full(8, 0.1)
        space = achievable_values(x, get_algorithm("ST"))
        assert space.values == tuple(sorted(space.values))
        assert space.spread == space.values[-1] - space.values[0] >= 0

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            achievable_values(np.array([]), get_algorithm("ST"))
