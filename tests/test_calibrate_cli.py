"""The repro-calibrate CLI."""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.selection import GridClassifier
from repro.selection.calibrate import main


class TestCalibrateCli:
    @pytest.fixture(scope="class")
    def outputs(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("cal")
        code = main(
            ["--out", str(out), "--quick", "--n", "512", "--trees", "40", "--seed", "1"]
        )
        assert code == 0
        return out

    def test_costs_json(self, outputs: Path):
        costs = json.loads((outputs / "costs.json").read_text())
        assert set(costs) == {"ST", "K", "CP", "PR"}
        assert costs["ST"] == 1.0
        assert all(v >= 1.0 for v in costs.values())

    def test_variability_json(self, outputs: Path):
        var = json.loads((outputs / "variability.json").read_text())
        assert 0 < var["c_st"] < 10
        assert var["n_cells_used"]["ST"] > 0

    def test_classifier_loadable_and_usable(self, outputs: Path):
        clf = GridClassifier.from_json((outputs / "classifier.json").read_text())
        from repro.generators import generate_sum_set
        from repro.metrics import profile_set

        hard = generate_sum_set(512, 1e12, 16, seed=2).values
        decision = clf.select(profile_set(hard), 1e-13)
        assert decision.code in ("K", "CP", "PR")
        easy = generate_sum_set(512, 1.0, 0, seed=3).values
        decision = clf.select(profile_set(easy), 1e-13)
        assert decision.code == "ST"
