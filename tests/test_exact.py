"""The exact superaccumulator: error-free by construction."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import (
    ExactSum,
    abs_error,
    errors_against_exact,
    exact_sum,
    exact_sum_fraction,
    fraction_reference,
    fsum_reference,
    relative_error,
    signed_error,
)

any_double = st.floats(allow_nan=False, allow_infinity=False)


class TestExactSumScalar:
    @given(st.lists(any_double, min_size=0, max_size=30))
    @settings(max_examples=60)
    def test_matches_fraction_reference(self, xs):
        acc = ExactSum()
        for v in xs:
            acc.add(v)
        assert acc.to_fraction() == sum((Fraction(v) for v in xs), Fraction(0))

    def test_subnormals_exact(self):
        tiny = 5e-324
        acc = ExactSum()
        for _ in range(3):
            acc.add(tiny)
        assert acc.to_fraction() == 3 * Fraction(tiny)

    def test_rejects_non_finite(self):
        acc = ExactSum()
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError):
                acc.add(bad)

    def test_huge_magnitude_cancellation(self):
        acc = ExactSum()
        acc.add(1.7e308)
        acc.add(-1.7e308)
        acc.add(5e-324)
        assert acc.to_fraction() == Fraction(5e-324)


class TestExactSumVectorized:
    @given(st.lists(any_double, min_size=0, max_size=200))
    @settings(max_examples=40)
    def test_add_array_matches_scalar(self, xs):
        a = ExactSum()
        a.add_array(np.array(xs, dtype=np.float64))
        b = ExactSum()
        for v in xs:
            b.add(v)
        assert a.to_fraction() == b.to_fraction()
        assert a.count == b.count == len(xs)

    def test_large_array_vs_fsum(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(-1e6, 1e6, 100_000)
        assert exact_sum(x) == fsum_reference(x)

    def test_order_independence(self):
        rng = np.random.default_rng(6)
        x = rng.uniform(-1, 1, 5000) * 10.0 ** rng.integers(-30, 30, 5000)
        a = ExactSum()
        a.add_array(x)
        b = ExactSum()
        b.add_array(x[::-1].copy())
        assert a.to_fraction() == b.to_fraction()

    def test_rejects_non_finite_array(self):
        acc = ExactSum()
        with pytest.raises(ValueError):
            acc.add_array(np.array([1.0, math.nan]))

    def test_zeros_counted_but_ignored(self):
        acc = ExactSum()
        acc.add_array(np.zeros(10))
        assert acc.is_zero()
        assert acc.count == 10


class TestMergeAndCopy:
    def test_merge_is_addition(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(-1, 1, 1000)
        a = ExactSum()
        a.add_array(x[:500])
        b = ExactSum()
        b.add_array(x[500:])
        a.merge(b)
        whole = ExactSum()
        whole.add_array(x)
        assert a.to_fraction() == whole.to_fraction()
        assert a.count == 1000

    def test_copy_is_independent(self):
        a = ExactSum()
        a.add(1.0)
        b = a.copy()
        b.add(2.0)
        assert a.to_float() == 1.0 and b.to_float() == 3.0


class TestRounding:
    def test_to_float_correctly_rounded(self):
        # 1 + u is exactly between 1 and 1+2u: rounds to even (1.0)
        acc = ExactSum()
        acc.add(1.0)
        acc.add(2.0**-53)
        assert acc.to_float() == 1.0
        acc.add(2.0**-80)  # nudge above the midpoint
        assert acc.to_float() == 1.0 + 2.0**-52

    def test_error_of(self):
        acc = ExactSum()
        acc.add(1.0)
        acc.add(2.0**-60)
        assert acc.error_of(1.0) == -(2.0**-60)


class TestErrorHelpers:
    def test_signed_abs_relative(self):
        exact = Fraction(3, 2)
        assert signed_error(2.0, exact) == 0.5
        assert abs_error(1.0, exact) == 0.5
        assert relative_error(1.5, exact) == 0.0
        assert relative_error(3.0, exact) == 1.0
        assert relative_error(1.0, Fraction(0)) == math.inf
        assert relative_error(0.0, Fraction(0)) == 0.0

    def test_errors_against_exact(self):
        data = np.array([1.0, 2.0, 3.0])
        errs = errors_against_exact([6.0, 6.5], data)
        assert errs.tolist() == [0.0, 0.5]

    def test_fraction_reference_matches(self):
        x = np.array([0.1, 0.2, 0.3])
        assert fraction_reference(x) == exact_sum_fraction(x)
