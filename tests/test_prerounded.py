"""Prerounded summation: bitwise reproducibility is a *proof obligation*."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import exact_sum_fraction
from repro.summation import SumContext
from repro.summation.prerounded import (
    AutoPreroundedAccumulator,
    PreroundedAccumulator,
    PreroundedSum,
)

bounded = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e30, max_value=1e30
)


class TestExtractionExactness:
    @given(bounded)
    def test_fold_decomposition_exact_above_cutoff(self, x):
        """x == sum(folds) + residual, with residual below the cutoff grid."""
        if x == 0.0:
            return
        from repro.fp.properties import exponent

        E = exponent(x)
        acc = PreroundedAccumulator(E, folds=3, fold_width=40)
        acc.add(x)
        retained = acc.to_fraction()
        residual = Fraction(x) - retained
        cutoff = Fraction(2) ** (E - 3 * 40 - 1)
        assert abs(residual) <= cutoff

    def test_scalar_and_vector_deposits_identical(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, 257) * 2.0 ** rng.integers(-20, 21, 257)
        ctx = SumContext.for_data(x)
        alg = PreroundedSum()
        a = alg.make_accumulator(ctx)
        a.add_array(x)
        b = alg.make_accumulator(ctx)
        for v in x.tolist():
            b.add(v)
        assert a._folds == b._folds
        assert a.result() == b.result()


class TestBitwiseReproducibility:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(9)
        base = rng.uniform(1, 2, 1500) * 2.0 ** rng.integers(-30, 31, 1500)
        x = np.concatenate([base, -base, rng.uniform(-1e5, 1e5, 999)])
        rng.shuffle(x)
        return x

    def test_any_permutation_same_bits(self, data):
        alg = PreroundedSum()
        ctx = SumContext.for_data(data)
        ref = alg.sum_array(data, ctx)
        rng = np.random.default_rng(1)
        for _ in range(10):
            perm = rng.permutation(data.size)
            assert alg.sum_array(data[perm], ctx) == ref

    def test_any_chunking_same_bits(self, data):
        alg = PreroundedSum()
        ctx = SumContext.for_data(data)
        ref = alg.sum_array(data, ctx)
        rng = np.random.default_rng(2)
        for _ in range(5):
            cuts = np.sort(rng.choice(data.size, size=7, replace=False))
            accs = []
            for chunk in np.split(data, cuts):
                acc = alg.make_accumulator(ctx)
                acc.add_array(chunk)
                accs.append(acc)
            rng.shuffle(accs)
            total = accs[0]
            for acc in accs[1:]:
                total.merge(acc)
            assert total.result() == ref

    def test_any_tree_same_bits(self, data):
        from repro.trees import evaluate_tree_generic, random_shape, balanced, serial

        small = data[:700]
        alg = PreroundedSum()
        ctx = SumContext.for_data(small)
        vals = {
            evaluate_tree_generic(shape_fn, small, alg, ctx)
            for shape_fn in (
                balanced(small.size),
                serial(small.size),
                random_shape(small.size, seed=3),
                random_shape(small.size, seed=4),
            )
        }
        assert len(vals) == 1

    def test_accuracy_within_prerounding_bound(self, data):
        alg = PreroundedSum()
        ctx = SumContext.for_data(data)
        v = alg.sum_array(data, ctx)
        exact = exact_sum_fraction(data)
        from repro.fp.properties import exponent

        cutoff = Fraction(2) ** (exponent(ctx.max_abs) - 120)
        assert abs(Fraction(v) - exact) <= data.size * cutoff + abs(exact) * Fraction(
            1, 2**52
        )


class TestBinSafety:
    def test_rejects_operand_above_bin(self):
        acc = PreroundedAccumulator(bin_exponent=4)
        with pytest.raises(ValueError, match="exceeds the bin capacity"):
            acc.add(64.0)

    def test_rejects_non_finite(self):
        acc = PreroundedAccumulator(bin_exponent=4)
        with pytest.raises(ValueError):
            acc.add(math.inf)

    def test_merge_requires_same_bin(self):
        a = PreroundedAccumulator(3)
        b = PreroundedAccumulator(4)
        with pytest.raises(ValueError, match="bin mismatch"):
            a.merge(b)

    def test_merge_requires_same_params(self):
        a = PreroundedAccumulator(3, folds=3)
        b = PreroundedAccumulator(3, folds=2)
        with pytest.raises(ValueError, match="bin mismatch"):
            a.merge(b)

    def test_context_required(self):
        with pytest.raises(ValueError, match="needs SumContext"):
            PreroundedSum().make_accumulator(None)

    def test_all_zero_data(self):
        alg = PreroundedSum()
        assert alg.sum_array(np.zeros(10)) == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PreroundedAccumulator(0, folds=0)
        with pytest.raises(ValueError):
            PreroundedAccumulator(0, fold_width=60)


class TestAccuracyKnobs:
    def test_fewer_folds_less_accurate(self):
        rng = np.random.default_rng(4)
        base = rng.uniform(1, 2, 2000) * 2.0 ** rng.integers(0, 40, 2000)
        x = np.concatenate([base, -base])
        rng.shuffle(x)
        errs = {}
        for folds in (1, 2, 3):
            alg = PreroundedSum(folds=folds)
            errs[folds] = abs(alg.sum_array(x))  # exact sum is zero
        assert errs[1] >= errs[2] >= errs[3]
        assert errs[3] == 0.0  # 120 bits below max: exact here

    def test_wider_folds_more_accurate(self):
        rng = np.random.default_rng(5)
        base = rng.uniform(1, 2, 2000) * 2.0 ** rng.integers(0, 45, 2000)
        x = np.concatenate([base, -base])
        err_narrow = abs(PreroundedSum(folds=1, fold_width=20).sum_array(x))
        err_wide = abs(PreroundedSum(folds=1, fold_width=45).sum_array(x))
        assert err_wide <= err_narrow


class TestAutoPrerounded:
    def test_streaming_without_context(self):
        rng = np.random.default_rng(6)
        x = rng.uniform(-1e10, 1e10, 500)
        acc = AutoPreroundedAccumulator()
        acc.add_array(x)
        two_pass = PreroundedSum().sum_array(x)
        assert acc.result() == two_pass

    def test_rebinning_on_growing_max(self):
        # within the K*W = 120-bit retention window the small value survives
        acc = AutoPreroundedAccumulator()
        acc.add(1.0)
        acc.add(1e30)  # re-bin upward; 1e30 is ~100 bits above 1.0
        acc.add(-1e30)
        assert acc.result() == 1.0

    def test_rebinning_prerounds_away_deep_bits(self):
        # beyond the retention window the small value is (by design) lost
        acc = AutoPreroundedAccumulator()
        acc.add(1.0)
        acc.add(1e100)  # ~332 bits above 1.0: outside 120 retained bits
        acc.add(-1e100)
        assert acc.result() == 0.0

    def test_merge_different_bins(self):
        a = AutoPreroundedAccumulator()
        a.add(1.0)
        b = AutoPreroundedAccumulator()
        b.add(1e50)
        a.merge(b)
        c = AutoPreroundedAccumulator()
        c.add(1e50)
        d = AutoPreroundedAccumulator()
        d.add(1.0)
        c.merge(d)
        assert a.result() == c.result() == 1e50 + 1.0

    def test_empty(self):
        assert AutoPreroundedAccumulator().result() == 0.0
        a = AutoPreroundedAccumulator()
        b = AutoPreroundedAccumulator()
        a.merge(b)
        assert a.result() == 0.0
