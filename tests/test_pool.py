"""Persistent worker pool: lifecycle, shm dispatch, cutover, env handling."""

from __future__ import annotations

import os

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.obs import get_registry
from repro.util.parallel import default_workers, map_parallel
from repro.util.pool import (
    MAX_AUTO_PARALLEL_BYTES,
    MIN_PARALLEL_BYTES,
    MIN_PARALLEL_ITEMS,
    SharedArena,
    SharedArray,
    arena_info,
    arena_pair,
    arena_view,
    attach_shared,
    get_pool,
    parallel_cutover,
    pool_info,
    register_worker_state,
    reload_parallel_env,
    shard_plan,
    shutdown_pool,
    worker_state,
)


def _square(x: int) -> int:
    return x * x


def _crash_or_square(x: int) -> int:
    if x < 0:
        os._exit(13)  # simulate a worker killed mid-task (OOM, segfault)
    return x * x


def _probe_nested_dispatch(_: int) -> tuple:
    """Runs inside a pool worker: nested dispatch must stay serial there."""
    from repro.util import pool
    from repro.util.parallel import map_parallel

    os.environ["REPRO_WORKERS"] = "4"  # what a runner parent would export
    auto_plan = pool.shard_plan(1000, 1 << 30, None)
    nested = map_parallel(_square, range(6), workers=4)
    return (pool.in_worker(), auto_plan, nested)


class TestDefaultWorkers:
    def test_env_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_env_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1

    def test_malformed_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "abc")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
            workers = default_workers()
        assert workers == max(1, (os.cpu_count() or 2) - 1)

    def test_unset_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == max(1, (os.cpu_count() or 2) - 1)


class TestMapParallel:
    def test_accepts_any_iterable(self):
        out = map_parallel(_square, (i for i in range(10)), workers=2)
        assert out == [i * i for i in range(10)]

    def test_serial_fallback_keeps_unpicklable_fn(self):
        # lambdas cannot cross process boundaries; <= 2 items stays in-process
        assert map_parallel(lambda x: x + 1, iter([1, 2]), workers=4) == [2, 3]

    def test_workers_one_is_serial(self):
        out = map_parallel(lambda x: -x, range(10), workers=1)
        assert out == [-i for i in range(10)]

    def test_repeated_calls_reuse_persistent_pool(self):
        first = map_parallel(_square, range(8), workers=2)
        pool = get_pool(2)
        starts_after_first = pool.starts
        dispatched = pool.tasks_dispatched
        second = map_parallel(_square, range(8), workers=2)
        assert first == second == [i * i for i in range(8)]
        assert pool.starts == starts_after_first  # no executor rebuild
        assert pool.tasks_dispatched == dispatched + 8


class TestPoolLifecycle:
    def test_get_pool_is_per_size_singleton(self):
        a = get_pool(2)
        b = get_pool(2)
        c = get_pool(3)
        assert a is b
        assert c is not a and c.workers == 3

    def test_pool_info_aggregates(self):
        get_pool(2).map(_square, [1, 2, 3], chunksize=1)
        info = pool_info()
        assert info["tasks_dispatched"] >= 3
        assert any(p["workers"] == 2 for p in info["pools"])

    def test_crashed_worker_detected_and_pool_restarts(self):
        pool = get_pool(2)
        assert pool.map(_square, [1, 2, 3, 4], chunksize=1) == [1, 4, 9, 16]
        restarts_before = pool.restarts
        with pytest.raises(BrokenProcessPool):
            pool.map(_crash_or_square, [1, 2, -1, 3], chunksize=1)
        assert pool.restarts >= restarts_before + 1
        # the pool heals: the next dispatch transparently restarts workers
        assert pool.map(_square, [5, 6, 7, 8], chunksize=1) == [25, 36, 49, 64]
        assert pool.live

    def test_shutdown_twice_is_a_no_op(self):
        """SIGTERM handlers and atexit can both call shutdown_pool — the
        second (and any later) call must be a harmless no-op."""
        get_pool(2).map(_square, [1, 2], chunksize=1)
        shutdown_pool()
        shutdown_pool()  # idempotent: nothing to release, no raise
        # and the pool machinery still works after a double shutdown
        assert get_pool(2).map(_square, [3], chunksize=1) == [9]
        shutdown_pool()

    def test_shutdown_reentry_is_a_no_op(self):
        """A signal arriving *during* shutdown re-enters shutdown_pool on
        the same thread; the guard must turn that into an immediate
        return instead of deadlocking or double-releasing."""
        from repro.util import pool as pool_mod

        get_pool(2).map(_square, [1], chunksize=1)
        inner_calls = []
        original = pool_mod._close_arenas

        def reentrant_close():
            # simulate the signal handler firing mid-shutdown
            inner_calls.append(object())
            if len(inner_calls) == 1:
                shutdown_pool()  # must return immediately (guard active)
            original()

        pool_mod._close_arenas = reentrant_close
        try:
            shutdown_pool()
        finally:
            pool_mod._close_arenas = original
        assert len(inner_calls) == 1  # the reentrant call did not recurse
        assert get_pool(2).map(_square, [2], chunksize=1) == [4]
        shutdown_pool()


class TestNestedDispatch:
    def test_workers_never_fork_their_own_pools(self):
        """A grid cell inside a worker reaching an auto-parallel path (e.g.
        evaluate_ensemble with REPRO_WORKERS inherited from the parent) must
        run serially — nested pools deadlock the executors at exit."""
        out = get_pool(2).map(_probe_nested_dispatch, [0, 1], chunksize=1)
        for in_w, auto_plan, nested in out:
            assert in_w is True
            assert auto_plan == (1, 1)
            assert nested == [i * i for i in range(6)]

    def test_parent_process_is_not_marked(self):
        from repro.util.pool import in_worker

        assert in_worker() is False


class TestSharedMemory:
    def test_roundtrip_view(self):
        arr = np.arange(32, dtype=np.float64).reshape(4, 8) * 1.5
        with SharedArray(arr) as block:
            with attach_shared(block.handle) as view:
                assert view.dtype == np.float64
                assert view.shape == (4, 8)
                assert np.array_equal(view, arr)

    def test_integer_matrix_roundtrip(self):
        arr = np.arange(12, dtype=np.int64).reshape(3, 4)
        with SharedArray(arr) as block:
            with attach_shared(block.handle) as view:
                assert view.dtype == np.int64
                assert np.array_equal(view, arr)

    def test_empty_array(self):
        with SharedArray(np.zeros(0, dtype=np.float64)) as block:
            with attach_shared(block.handle) as view:
                assert view.size == 0

    def test_bytes_in_flight_gauge_returns_to_zero(self):
        registry = get_registry()
        was_enabled = registry.enabled
        registry.enable()
        try:
            gauge = registry.gauge("repro_pool_shm_bytes_in_flight")
            base = gauge.value
            block = SharedArray(np.ones(1024, dtype=np.float64))
            assert gauge.value == base + 8192
            block.close()
            assert gauge.value == base
            block.close()  # idempotent
            assert gauge.value == base
        finally:
            if not was_enabled:
                registry.disable()

    def test_pool_metrics_recorded_when_enabled(self):
        registry = get_registry()
        was_enabled = registry.enabled
        registry.enable()
        try:
            tasks = registry.counter("repro_pool_tasks_total", path="map")
            before = tasks.value
            map_parallel(_square, range(8), workers=2)
            assert tasks.value == before + 8
            assert registry.histogram("repro_pool_roundtrip_seconds").count > 0
            assert registry.histogram("repro_pool_dispatch_seconds").count > 0
        finally:
            if not was_enabled:
                registry.disable()


class TestCutover:
    @pytest.fixture(autouse=True)
    def _fresh_cutover_cache(self):
        """Cutover config is cached per process; reparse around every test so
        one test's monkeypatched environment never bleeds into the next."""
        reload_parallel_env()
        yield
        reload_parallel_env()

    def test_single_item_always_serial(self):
        assert shard_plan(1, 1 << 30, 8) == (1, 1)

    def test_explicit_workers_force_parallel(self):
        assert shard_plan(2, 16, 4) == (4, 2)
        assert shard_plan(100, 16, 4) == (4, 4)

    def test_explicit_one_forces_serial(self):
        assert shard_plan(1000, 1 << 30, 1) == (1, 1)

    def test_auto_small_batches_stay_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert shard_plan(MIN_PARALLEL_ITEMS - 1, 1 << 30, None) == (1, 1)
        assert shard_plan(1000, MIN_PARALLEL_BYTES - 1, None) == (1, 1)

    def test_auto_large_batches_parallelise(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        plan = shard_plan(1000, MIN_PARALLEL_BYTES, None)
        assert plan == (4, 4)

    def test_auto_respects_materialisation_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert not parallel_cutover(1000, (1 << 31) + 1, 4)

    def test_cutover_env_overrides(self, monkeypatch):
        # the knobs are parsed once per process, not per call: an env edit
        # only takes effect through an explicit reload
        monkeypatch.setenv("REPRO_PARALLEL_MIN_ITEMS", "2")
        monkeypatch.setenv("REPRO_PARALLEL_MIN_BYTES", "16")
        assert not parallel_cutover(2, 16, 4)  # cached defaults still active
        assert reload_parallel_env() == (2, 16, MAX_AUTO_PARALLEL_BYTES)
        assert parallel_cutover(2, 16, 4)

    def test_malformed_cutover_env_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_ITEMS", "lots")
        # reload parses eagerly, so the warning fires here, not per dispatch
        with pytest.warns(RuntimeWarning, match="REPRO_PARALLEL_MIN_ITEMS"):
            cfg = reload_parallel_env()
        assert cfg == (MIN_PARALLEL_ITEMS, MIN_PARALLEL_BYTES, MAX_AUTO_PARALLEL_BYTES)
        assert parallel_cutover(MIN_PARALLEL_ITEMS, MIN_PARALLEL_BYTES, 4)


class TestWorkerState:
    """The sanctioned protocol for module state that pool workers may read."""

    def test_factory_runs_lazily_and_once(self):
        calls = []

        def build():
            calls.append(1)
            return {"table": [1, 2, 3]}

        register_worker_state("t_lazy", build)
        assert calls == []  # registration alone never materialises
        first = worker_state("t_lazy")
        second = worker_state("t_lazy")
        assert first is second and first["table"] == [1, 2, 3]
        assert calls == [1]

    def test_unregistered_name_raises_with_guidance(self):
        with pytest.raises(KeyError, match="register_worker_state"):
            worker_state("t_never_registered")

    def test_reregistration_drops_the_cached_value(self):
        register_worker_state("t_swap", lambda: "old")
        assert worker_state("t_swap") == "old"
        register_worker_state("t_swap", lambda: "new")
        assert worker_state("t_swap") == "new"

    def test_non_callable_factory_rejected(self):
        with pytest.raises(TypeError, match="not callable"):
            register_worker_state("t_bad", 42)

    def test_returns_the_factory_for_decorator_stacking(self):
        def build():
            return 7

        assert register_worker_state("t_deco", build) is build
        assert worker_state("t_deco") == 7

class TestAttachSharedRelease:
    """attach_shared releases deterministically — no gc.collect() retries."""

    def test_clean_exit_releases_without_error(self):
        arr = np.arange(4, dtype=np.float64)
        with SharedArray(arr) as block:
            with attach_shared(block.handle) as view:
                assert view.sum() == arr.sum()

    def test_lingering_view_raises_clear_error(self):
        arr = np.arange(16, dtype=np.float64)
        block = SharedArray(arr)
        leaked = []
        try:
            with pytest.raises(RuntimeError, match="live ndarray views"):
                with attach_shared(block.handle) as view:
                    leaked.append(view)  # escapes the scope: a caller bug
            leaked.clear()  # repro: allow[FP012] -- plain Python list holding the escaped view, not a shm view
        finally:
            block.close()


class TestArena:
    """Persistent arena lifecycle: growth epochs, reuse, unlink accounting."""

    def setup_method(self):
        # earlier tests (e.g. parallel-determinism serving runs) may have
        # left pool-lifetime arenas alive; start from a fresh epoch
        shutdown_pool()

    def teardown_method(self):
        shutdown_pool()

    def test_reserve_floor_and_steady_state_reuse(self):
        with arena_pair() as (inp, res):
            name1, gen1, tag1 = inp.reserve(100)
            assert tag1 == "input" and gen1 == 1
            assert inp.capacity == 1 << 16  # page-ish floor
            # a fitting reserve is the steady state: same segment, same epoch
            assert inp.reserve(2000) == (name1, gen1, tag1)
            assert res.tag == "result"

    def test_growth_bumps_generation_and_persists_across_dispatches(self):
        with arena_pair() as (inp, _res):
            _, gen1, _ = inp.reserve(100)
            name2, gen2, _ = inp.reserve(1 << 17)
            assert gen2 == gen1 + 1
            assert inp.capacity == 1 << 17
        with arena_pair() as (inp, _res):
            # the grown segment survives between dispatches (pool lifetime)
            assert inp.reserve(1 << 17) == (name2, gen2, "input")

    def test_grow_and_reuse_counters(self):
        registry = get_registry()
        was_enabled = registry.enabled
        registry.enable()
        try:
            shutdown_pool()  # fresh arenas: the first reserve must grow
            grow = registry.counter("repro_pool_arena_grow_total", tag="input")
            reuse = registry.counter("repro_pool_arena_reuse_total", tag="input")
            g0, r0 = grow.value, reuse.value
            with arena_pair() as (inp, _res):
                inp.reserve(64)
                inp.reserve(64)
            assert grow.value == g0 + 1
            assert reuse.value == r0 + 1
        finally:
            if not was_enabled:
                registry.disable()

    def test_shutdown_unlinks_and_gauge_returns_to_zero(self):
        registry = get_registry()
        was_enabled = registry.enabled
        registry.enable()
        try:
            shutdown_pool()
            gauge = registry.gauge("repro_pool_shm_bytes_in_flight")
            base = gauge.value
            with arena_pair() as (inp, res):
                inp.reserve(8)
                res.reserve(8)
            assert gauge.value == base + 2 * (1 << 16)
            assert set(arena_info()) == {"input", "result"}
            shutdown_pool()
            assert arena_info() == {}
            assert gauge.value == base
        finally:
            if not was_enabled:
                registry.disable()

    def test_arena_view_roundtrip_and_epoch_swap(self):
        with arena_pair() as (inp, _res):
            h1 = inp.reserve(256)
            inp.view(np.float64, (4,))[:] = [1.0, 2.0, 3.0, 4.0]
            v1 = arena_view(h1, np.float64, (4,))
            assert v1.tolist() == [1.0, 2.0, 3.0, 4.0]
            del v1  # dropped before the regrow epoch below
            h2 = inp.reserve(1 << 20)  # forces a new segment + generation
            assert h2[0] != h1[0] and h2[1] == h1[1] + 1
            inp.view(np.float64, (2,))[:] = [5.0, 6.0]
            v2 = arena_view(h2, np.float64, (2,))
            assert v2.tolist() == [5.0, 6.0]
            del v2

    def test_stale_attachment_with_live_view_raises(self):
        with arena_pair() as (inp, _res):
            h1 = inp.reserve(64)
            inp.view(np.float64, (1,))[:] = [7.0]
            lingering = arena_view(h1, np.float64, (1,))
            h2 = inp.reserve(1 << 20)
            with pytest.raises(RuntimeError, match="live ndarray views"):
                arena_view(h2, np.float64, (1,))
            del lingering
            healed = arena_view(h2, np.float64, (1,))  # swap now succeeds
            del healed
