"""Double-double arithmetic."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.double_double import DoubleDouble, dd_add_array, dd_sum

moderate = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e100, max_value=1e100
)


class TestDoubleDouble:
    def test_from_float_roundtrip(self):
        d = DoubleDouble.from_float(0.1)
        assert d.to_float() == 0.1  # repro: allow[FP007] -- exact round-trip is the property under test
        assert d.lo == 0.0

    @given(moderate, moderate)
    def test_add_exact_for_two_doubles(self, a, b):
        d = DoubleDouble.from_float(a) + DoubleDouble.from_float(b)
        assert Fraction(d.hi) + Fraction(d.lo) == Fraction(a) + Fraction(b)

    def test_add_float_matches_dd_add(self):
        d = DoubleDouble.from_float(1e16)
        assert (d + 1.0) == (d + DoubleDouble.from_float(1.0))

    def test_captures_absorbed_bits(self):
        d = DoubleDouble.from_float(1e16) + 1.0
        assert d.to_float() == 1e16  # rounded back
        assert d.lo == 1.0  # but the bit is retained

    def test_normalization_invariant(self):
        d = (DoubleDouble.from_float(1.0) + 2.0**-80) + 2.0**-90
        assert abs(d.lo) <= 0.5 * np.spacing(abs(d.hi))

    def test_mul_exact_for_two_doubles(self):
        d = DoubleDouble.from_float(0.1) * DoubleDouble.from_float(0.3)
        assert Fraction(d.hi) + Fraction(d.lo) == pytest.approx(
            float(Fraction(0.1) * Fraction(0.3)), abs=1e-40
        )

    def test_neg_sub(self):
        a = DoubleDouble.from_float(3.0)
        b = DoubleDouble.from_float(1.5)
        assert (a - b).to_float() == 1.5
        assert (-a).hi == -3.0

    def test_comparison(self):
        assert DoubleDouble.from_float(1.0) < DoubleDouble.from_float(2.0)
        assert DoubleDouble(1.0, 2.0**-60) > DoubleDouble(1.0, 0.0)
        assert DoubleDouble.from_float(5.0) == 5.0


class TestDDSum:
    def test_sum_accuracy_vs_fraction(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, 1000) * 10.0 ** rng.integers(-8, 8, 1000)
        exact = sum(Fraction(v) for v in x.tolist())
        d = dd_sum(x)
        err = abs(float(Fraction(d.hi) + Fraction(d.lo) - exact))
        assert err <= 1e-25 * float(abs(exact) + 1)

    def test_empty_and_single(self):
        assert dd_sum(np.array([])).to_float() == 0.0
        assert dd_sum(np.array([3.5])).to_float() == 3.5

    def test_dd_add_array_matches_scalar(self):
        rng = np.random.default_rng(2)
        hi1 = rng.uniform(-1e10, 1e10, 50)
        lo1 = hi1 * 1e-18
        hi2 = rng.uniform(-1e10, 1e10, 50)
        lo2 = hi2 * 1e-18
        h, l = dd_add_array(hi1, lo1, hi2, lo2)
        for i in range(50):
            d = DoubleDouble(hi1[i], lo1[i]).normalized() + DoubleDouble(
                hi2[i], lo2[i]
            ).normalized()
            # the array kernel uses fast_two_sum renormalisation; values agree
            assert h[i] + l[i] == pytest.approx(d.to_float(), rel=1e-15)
