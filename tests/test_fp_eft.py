"""Error-free transformations: exactness is the whole contract."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.eft import (
    fast_two_sum,
    fast_two_sum_array,
    split,
    two_prod,
    two_prod_array,
    two_sum,
    two_sum_array,
)

finite_doubles = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e300, max_value=1e300
)
moderate_doubles = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e150, max_value=1e150
)


class TestTwoSum:
    @given(finite_doubles, finite_doubles)
    def test_exact_identity(self, a, b):
        s, e = two_sum(a, b)
        assert Fraction(a) + Fraction(b) == Fraction(s) + Fraction(e)

    @given(finite_doubles, finite_doubles)
    def test_s_is_rounded_sum(self, a, b):
        s, _ = two_sum(a, b)
        assert s == a + b

    def test_textbook_absorption(self):
        s, e = two_sum(1e16, 1.0)
        assert s == 1e16
        assert e == 1.0

    def test_zero_identity(self):
        assert two_sum(0.0, 0.0) == (0.0, 0.0)

    def test_commutative_value(self):
        s1, e1 = two_sum(0.1, 0.7)
        s2, e2 = two_sum(0.7, 0.1)
        assert s1 == s2 and e1 == e2


class TestFastTwoSum:
    @given(finite_doubles, finite_doubles)
    def test_matches_two_sum_when_ordered(self, a, b):
        hi, lo = (a, b) if abs(a) >= abs(b) else (b, a)
        assert fast_two_sum(hi, lo) == two_sum(hi, lo)

    def test_precondition_matters(self):
        # with |a| < |b| FastTwoSum loses the identity: the error term of
        # (1.0, 1e17) is unrecoverable in the wrong order
        a, b = 1.0, 1e17
        s, e = fast_two_sum(a, b)
        assert s == a + b  # s is still the rounded sum ...
        assert Fraction(s) + Fraction(e) != Fraction(a) + Fraction(b)
        # ... while the correct order keeps it
        s2, e2 = fast_two_sum(b, a)
        assert Fraction(s2) + Fraction(e2) == Fraction(a) + Fraction(b)


class TestVectorized:
    @given(st.lists(finite_doubles, min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_two_sum_array_matches_scalar(self, xs):
        a = np.array(xs)
        b = a[::-1].copy()
        s, e = two_sum_array(a, b)
        for i in range(a.size):
            ss, ee = two_sum(float(a[i]), float(b[i]))
            assert s[i] == ss and e[i] == ee

    def test_fast_two_sum_array_matches_scalar(self, rng):
        a = rng.uniform(-1e6, 1e6, 100)
        b = rng.uniform(-1.0, 1.0, 100)
        s, e = fast_two_sum_array(a, b)
        for i in range(100):
            ss, ee = fast_two_sum(float(a[i]), float(b[i]))
            assert s[i] == ss and e[i] == ee

    def test_two_prod_array_matches_scalar(self, rng):
        a = rng.uniform(-1e10, 1e10, 100)
        b = rng.uniform(-1e10, 1e10, 100)
        p, e = two_prod_array(a, b)
        for i in range(100):
            pp, ee = two_prod(float(a[i]), float(b[i]))
            assert p[i] == pp and e[i] == ee


class TestSplitAndProd:
    @given(moderate_doubles)
    def test_split_exact(self, a):
        hi, lo = split(a)
        assert Fraction(hi) + Fraction(lo) == Fraction(a)

    @given(moderate_doubles)
    def test_split_parts_fit_in_half_mantissa(self, a):
        hi, lo = split(a)
        for part in (hi, lo):
            if part != 0.0:
                m, _ = math.frexp(part)
                # 27 bits at most: scaling to an odd integer must fit 2**27
                frac = Fraction(abs(part))
                while frac.denominator > 1:
                    frac *= 2
                while frac.numerator % 2 == 0 and frac.numerator > 0:
                    frac /= 2
                assert frac.numerator <= 2**27

    @given(moderate_doubles, moderate_doubles)
    def test_two_prod_exact(self, a, b):
        # TwoProd's identity holds when neither the product nor its error
        # term (up to 2**-53 smaller) leaves the normal range.
        if a != 0.0 and b != 0.0 and not 2.0**-950 < abs(a) * abs(b) < 2.0**1000:
            return
        p, e = two_prod(a, b)
        assert Fraction(a) * Fraction(b) == Fraction(p) + Fraction(e)


@pytest.fixture
def rng():
    return np.random.default_rng(0)
