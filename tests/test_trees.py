"""Reduction-tree model: structure, shapes, evaluation equivalence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summation import SumContext, get_algorithm
from repro.trees import (
    ReductionTree,
    balanced,
    evaluate_balanced_vectorized,
    evaluate_ensemble,
    evaluate_tree,
    evaluate_tree_generic,
    from_parent_array,
    random_shape,
    serial,
    serial_ensemble_standard,
    serial_ensemble_vops,
    skewed,
)


class TestStructure:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 100, 1023])
    def test_balanced_valid_and_log_depth(self, n):
        t = balanced(n)
        t.validate()
        assert t.n_leaves == n
        if n > 1:
            import math

            assert t.depth() == math.ceil(math.log2(n))

    @pytest.mark.parametrize("n", [1, 2, 3, 50])
    def test_serial_valid_and_linear_depth(self, n):
        t = serial(n)
        t.validate()
        assert t.depth() == n - 1

    @given(st.integers(min_value=1, max_value=200), st.integers(0, 2**32 - 1))
    @settings(max_examples=30)
    def test_random_shape_always_valid(self, n, seed):
        t = random_shape(n, seed=seed)
        t.validate()
        assert serial(n).depth() >= t.depth() >= balanced(n).depth()

    @pytest.mark.parametrize("skew", [0.0, 0.3, 0.7, 1.0])
    def test_skewed_valid(self, skew):
        t = skewed(100, skew)
        t.validate()

    def test_skew_interpolates_depth(self):
        depths = [skewed(256, s).depth() for s in (0.0, 0.5, 1.0)]
        assert depths[0] < depths[1] < depths[2]

    def test_leaf_depths(self):
        t = serial(4)
        assert t.leaf_depths().tolist() == [3, 3, 2, 1]
        tb = balanced(4)
        assert tb.leaf_depths().tolist() == [2, 2, 2, 2]

    def test_parents_consistency(self):
        t = balanced(8)
        p = t.parents()
        assert (p[: t.root_slot] >= 0).all()
        assert p[t.root_slot] == -1

    def test_networkx_export(self):
        g = balanced(8).to_networkx()
        assert g.number_of_nodes() == 15
        assert g.number_of_edges() == 14

    def test_schedule_validation_catches_garbage(self):
        sched = np.array([[0, 0]])
        with pytest.raises(ValueError, match="consumed twice"):
            ReductionTree(n_leaves=2, schedule=sched).validate()
        sched = np.array([[0, 5]])
        with pytest.raises(ValueError, match="does not exist"):
            ReductionTree(n_leaves=2, schedule=sched).validate()

    def test_bad_schedule_shape(self):
        with pytest.raises(ValueError, match="schedule shape"):
            ReductionTree(n_leaves=3, schedule=np.zeros((1, 2), dtype=np.int64))

    def test_from_parent_array_roundtrip(self):
        # build a parent array for serial(3): leaves 0,1,2; internals 3,4
        parent = [3, 3, 4, 4, -1]
        t = from_parent_array(parent, 3)
        t.validate()
        x = np.array([1.0, 2.0, 3.0])
        assert evaluate_tree_generic(t, x, get_algorithm("ST")) == 6.0

    def test_from_parent_array_rejects_non_full(self):
        with pytest.raises(ValueError):
            from_parent_array([1, -1, 1], 2)  # node 1 has 2 children? -> [1,-1,1] has children {0,2}: full. use broken one
        with pytest.raises(ValueError):
            from_parent_array([2, 2, -1, 2], 3)  # wrong node count


class TestEvaluationEquivalence:
    """Fast paths must match the literal node-walk bitwise."""

    @pytest.mark.parametrize("code", ["ST", "K", "CP", "DD", "PR", "EX"])
    @pytest.mark.parametrize("n", [1, 2, 3, 17, 256, 1001])
    def test_balanced_fast_path(self, code, n):
        rng = np.random.default_rng(n)
        x = rng.uniform(-1e3, 1e3, n)
        alg = get_algorithm(code)
        ctx = SumContext.for_data(x)
        generic = evaluate_tree_generic(balanced(n), x, alg, ctx)
        fast = evaluate_tree(balanced(n), x, alg, ctx)
        assert generic == fast

    @pytest.mark.parametrize("code", ["ST", "K", "CP", "DD"])
    @pytest.mark.parametrize("n", [2, 3, 40, 333])
    def test_serial_fast_path(self, code, n):
        rng = np.random.default_rng(n + 1)
        x = rng.uniform(-1e3, 1e3, n)
        alg = get_algorithm(code)
        generic = evaluate_tree_generic(serial(n), x, alg)
        fast = evaluate_tree(serial(n), x, alg)
        assert generic == fast

    def test_serial_batch_standard_matches(self):
        rng = np.random.default_rng(10)
        x = rng.uniform(-1, 1, 500)
        perms = np.vstack([rng.permutation(500) for _ in range(8)])
        batch = serial_ensemble_standard(x[perms])
        for row, p in zip(batch, perms):
            assert row == evaluate_tree_generic(serial(500), x[p], get_algorithm("ST"))

    @pytest.mark.parametrize("code", ["K", "CP", "DD"])
    def test_serial_batch_vops_matches(self, code):
        rng = np.random.default_rng(11)
        x = rng.uniform(-1e6, 1e6, 200)
        alg = get_algorithm(code)
        perms = np.vstack([rng.permutation(200) for _ in range(5)])
        batch = serial_ensemble_vops(x[perms], alg.vector_ops)
        for row, p in zip(batch, perms):
            assert row == evaluate_tree_generic(serial(200), x[p], alg)

    def test_force_generic_flag(self):
        rng = np.random.default_rng(12)
        x = rng.uniform(-1, 1, 64)
        v1 = evaluate_tree(balanced(64), x, get_algorithm("CP"), force_generic=True)
        v2 = evaluate_tree(balanced(64), x, get_algorithm("CP"))
        assert v1 == v2

    def test_single_leaf(self):
        t = balanced(1)
        assert evaluate_tree(t, np.array([42.0]), get_algorithm("ST")) == 42.0

    def test_wrong_data_size_raises(self):
        with pytest.raises(ValueError, match="operands"):
            evaluate_tree_generic(balanced(4), np.ones(5), get_algorithm("ST"))

    def test_exact_oracle_tree_invariant(self):
        """Any tree shape reduces to the exact sum under the oracle."""
        rng = np.random.default_rng(13)
        x = rng.uniform(-1e10, 1e10, 129)
        alg = get_algorithm("EX")
        vals = {
            evaluate_tree_generic(t, x, alg)
            for t in (balanced(129), serial(129), random_shape(129, seed=5))
        }
        assert len(vals) == 1


class TestEnsembles:
    def test_first_tree_is_identity_assignment(self, nasty_set):
        alg = get_algorithm("ST")
        res = evaluate_ensemble(nasty_set, "balanced", alg, 5, seed=1)
        direct = evaluate_balanced_vectorized(nasty_set, alg)
        assert res[0] == direct

    def test_deterministic_algorithms_tiled(self, nasty_set):
        res = evaluate_ensemble(nasty_set, "serial", get_algorithm("PR"), 7, seed=2)
        assert np.unique(res).size == 1

    def test_seeded_reproducibility(self, nasty_set):
        a = evaluate_ensemble(nasty_set, "balanced", get_algorithm("ST"), 10, seed=42)
        b = evaluate_ensemble(nasty_set, "balanced", get_algorithm("ST"), 10, seed=42)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, nasty_set):
        a = evaluate_ensemble(nasty_set, "balanced", get_algorithm("ST"), 10, seed=1)
        b = evaluate_ensemble(nasty_set, "balanced", get_algorithm("ST"), 10, seed=2)
        assert not np.array_equal(a, b)

    def test_serial_st_batching_boundary(self):
        # exercise the multi-batch path with a tiny batch budget
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, 100)
        res_small = evaluate_ensemble(
            x, "serial", get_algorithm("ST"), 9, seed=5, batch_elems=150
        )
        res_big = evaluate_ensemble(
            x, "serial", get_algorithm("ST"), 9, seed=5, batch_elems=1 << 24
        )
        assert np.array_equal(res_small, res_big)

    def test_bad_shape_rejected(self, nasty_set):
        with pytest.raises(ValueError, match="balanced"):
            evaluate_ensemble(nasty_set, "spiral", get_algorithm("ST"), 3, seed=1)

    def test_spread_ordering_st_k_cp(self, nasty_set):
        spreads = {}
        for code in ("ST", "K", "CP"):
            vals = evaluate_ensemble(nasty_set, "serial", get_algorithm(code), 30, seed=7)
            spreads[code] = float(vals.max() - vals.min())
        assert spreads["ST"] >= spreads["K"] >= spreads["CP"]
