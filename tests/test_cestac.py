"""CESTAC stochastic arithmetic and cancellation tracking."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cestac import (
    SEVERITY_DIGITS,
    StochasticValue,
    cestac_sum,
    random_rounded_add,
    random_rounded_mul,
    significant_digits,
    track_cancellations,
    track_cancellations_cestac,
)
from repro.util.rng import resolve_rng


class TestRandomRounding:
    def test_exact_add_unperturbed(self):
        rng = resolve_rng(0)
        for _ in range(20):
            assert random_rounded_add(1.0, 2.0, rng) == 3.0

    def test_inexact_add_two_candidates(self):
        rng = resolve_rng(1)
        base = 1e16 + 1.0  # rounds; candidates are s and nextafter(s, up)
        seen = {random_rounded_add(1e16, 1.0, rng) for _ in range(200)}
        assert len(seen) == 2
        s = 1e16 + 1.0
        assert s in seen
        assert math.nextafter(s, math.inf) in seen or math.nextafter(s, -math.inf) in seen

    def test_candidates_bracket_exact_value(self):
        rng = resolve_rng(2)
        vals = {random_rounded_add(0.1, 0.2, rng) for _ in range(100)}
        from fractions import Fraction

        exact = Fraction(0.1) + Fraction(0.2)
        assert min(Fraction(v) for v in vals) <= exact <= max(Fraction(v) for v in vals)

    def test_mul(self):
        rng = resolve_rng(3)
        seen = {random_rounded_mul(0.1, 0.3, rng) for _ in range(100)}
        assert 1 <= len(seen) <= 2


class TestSignificantDigits:
    def test_identical_samples_full_precision(self):
        assert significant_digits((1.0, 1.0, 1.0)) == pytest.approx(15.95)

    def test_wild_spread_zero_digits(self):
        assert significant_digits((1.0, -1.0, 0.5)) == 0.0

    def test_moderate_spread(self):
        d = significant_digits((1.0, 1.0 + 1e-8, 1.0 - 1e-8))
        assert 6.0 < d < 9.5

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            significant_digits((1.0,))

    def test_stochastic_value_wrapper(self):
        v = StochasticValue.from_float(2.0)
        assert v.mean() == 2.0
        assert v.significant_digits() == pytest.approx(15.95)
        rng = resolve_rng(4)
        w = v.add(StochasticValue.from_float(1e-20), rng)
        assert w.mean() == pytest.approx(2.0)


class TestCestacSum:
    def test_estimates_true_digit_count(self):
        # an ill-conditioned sum: CESTAC should report far fewer digits
        rng = np.random.default_rng(5)
        base = rng.uniform(1, 2, 2000)
        good = cestac_sum(base, seed=6)
        assert good.significant_digits() > 12
        bad = np.concatenate([base * 1e12, -base * 1e12, base[:10]])
        est = cestac_sum(bad, seed=7)
        assert est.significant_digits() < good.significant_digits()

    def test_seeded_determinism(self):
        x = np.random.default_rng(8).uniform(-1, 1, 500)
        a = cestac_sum(x, seed=9)
        b = cestac_sum(x, seed=9)
        assert a.samples == b.samples

    def test_empty(self):
        assert cestac_sum(np.array([]), seed=0).mean() == 0.0


class TestCancellationTracking:
    def test_no_cancellation_in_positive_sum(self):
        x = np.abs(np.random.default_rng(10).uniform(1, 2, 100))
        report = track_cancellations(x)
        assert report.total_events == 0
        assert report.n_adds == 99

    def test_catastrophic_pair_detected(self):
        report = track_cancellations(np.array([1.0, -1.0 + 1e-15, 1.0]))
        assert report.total_events >= 1
        assert report.counts[8] >= 1  # ~15 digits gone in the first add

    def test_complete_cancellation_counted_max(self):
        report = track_cancellations(np.array([1.0, -1.0]))
        assert report.total_events == 1
        assert report.losses[0] == pytest.approx(53 * math.log10(2))

    def test_counts_are_cumulative_by_severity(self):
        x = np.random.default_rng(11).uniform(-1, 1, 500)
        r = track_cancellations(x)
        c = r.counts
        assert c[1] >= c[2] >= c[4] >= c[8]

    def test_small_inputs(self):
        assert track_cancellations(np.array([])).n_adds == 0
        assert track_cancellations(np.array([1.0])).n_adds == 0

    def test_cestac_variant_runs_and_agrees_roughly(self):
        x = np.random.default_rng(12).uniform(-1, 1, 300)
        exact_r = track_cancellations(x)
        cestac_r = track_cancellations_cestac(x, seed=13)
        assert cestac_r.n_adds == exact_r.n_adds
        # both should find *some* cancellation activity on signed data
        assert (cestac_r.total_events > 0) == (exact_r.total_events > 0)

    def test_total_digits_lost(self):
        r = track_cancellations(np.array([1.0, -0.5, 0.25]))
        assert r.total_digits_lost == pytest.approx(sum(r.losses))
