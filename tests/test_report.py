"""Report aggregation."""

from __future__ import annotations

import json

import pytest

from repro.experiments.report import build_report, collect_payloads
from repro.experiments.runner import main


@pytest.fixture
def results_dir(tmp_path):
    for exp, ok in (("fig2", True), ("fig7", False)):
        payload = {
            "experiment": exp,
            "title": f"title of {exp}",
            "scale": "ci",
            "checks": {"check one": True, "check two": ok},
            "rows": [{"a": 1}, {"a": 2}],
        }
        (tmp_path / f"{exp}_ci.json").write_text(json.dumps(payload))
    (tmp_path / "garbage.json").write_text("not json{")
    (tmp_path / "unrelated.json").write_text('{"foo": 1}')
    return tmp_path


class TestCollect:
    def test_only_experiment_payloads(self, results_dir):
        payloads = collect_payloads(results_dir)
        assert {p["experiment"] for p in payloads} == {"fig2", "fig7"}

    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_payloads(tmp_path / "nope")


class TestBuild:
    def test_report_contents(self, results_dir):
        text = build_report(results_dir)
        assert "3/4 pass" in text
        assert "## fig2" in text and "✅" in text
        assert "## fig7" in text and "❌" in text
        assert "- [x] check one" in text
        assert "- [ ] check two" in text

    def test_paper_order(self, results_dir):
        text = build_report(results_dir)
        assert text.index("## fig2") < text.index("## fig7")

    def test_empty_dir(self, tmp_path):
        with pytest.raises(ValueError):
            build_report(tmp_path)

    def test_cli(self, results_dir, tmp_path, capsys):
        out = tmp_path / "REPORT.md"
        assert main(["report", str(results_dir), "-o", str(out)]) == 0
        assert "Reproduction report" in out.read_text()
        main(["report", str(results_dir)])
        assert "Reproduction report" in capsys.readouterr().out
