"""Metrics layer: set properties, error statistics, bounds."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.properties import UNIT_ROUNDOFF
from repro.metrics import (
    analytical_bound,
    boxplot_summary,
    condition_based_relative_bound,
    condition_number,
    dynamic_range,
    error_stats,
    profile_set,
    statistical_bound,
)


class TestConditionNumber:
    def test_same_sign_is_one(self):
        assert condition_number(np.array([1.0, 2.5, 0.25])) == 1.0
        assert condition_number(np.array([-1.0, -2.5])) == 1.0

    def test_zero_sum_is_inf(self):
        assert math.isinf(condition_number(np.array([1.0, -1.0])))

    def test_table_value(self):
        x = np.array([2.505e2, 2.5e2, -2.495e2, -2.5e2])
        assert condition_number(x) == pytest.approx(1000.0, rel=1e-12)

    def test_exactness_at_extreme_k(self):
        # sum = 1 ulp of a huge absolute mass: float-only estimation fails,
        # the exact path must not
        big = 2.0**52
        x = np.array([big, -big + 1.0, 1e-30])  # exact sum: 1.0 + 1e-30ish
        k = condition_number(x)
        assert k == pytest.approx(2 * big, rel=1e-10)

    def test_empty_and_zero_conventions(self):
        assert condition_number(np.array([])) == 1.0
        assert condition_number(np.zeros(5)) == 1.0

    def test_zeros_mixed_in_are_harmless(self):
        assert condition_number(np.array([1.0, 0.0, 2.0])) == 1.0


class TestDynamicRange:
    def test_same_exponent_zero(self):
        assert dynamic_range(np.array([1.0, 1.5, -1.999])) == 0

    def test_known_span(self):
        assert dynamic_range(np.array([1.0, 1024.0])) == 10

    def test_ignores_zeros(self):
        assert dynamic_range(np.array([0.0, 4.0, 8.0])) == 1

    def test_all_zero_raises(self):
        with pytest.raises(ValueError):
            dynamic_range(np.zeros(3))

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=20)
    def test_constructed_span(self, dr):
        x = np.array([1.5, 1.5 * 2.0**dr])
        assert dynamic_range(x) == dr


class TestProfileSet:
    def test_profile_fields(self):
        x = np.array([3.0, -1.0, 0.5])
        p = profile_set(x)
        assert p.n == 3
        assert p.max_abs == 3.0
        assert p.abs_sum == 4.5
        assert p.condition == pytest.approx(1.8)
        assert p.dynamic_range == 2
        assert p.has_abs_sum

    def test_log10_condition(self):
        p = profile_set(np.array([1.0, -1.0, 1e-3]))
        assert p.log10_condition == pytest.approx(math.log10(2001.0), rel=1e-6)


class TestErrorStats:
    def test_constant_values_zero_spread(self):
        data = np.array([1.0, 2.0])
        s = error_stats([3.0, 3.0, 3.0], data)
        assert s.std == 0.0 and s.spread == 0.0
        assert s.reproducible_bitwise
        assert s.n_distinct == 1

    def test_known_errors(self):
        data = np.array([1.0, 2.0])  # exact 3
        s = error_stats([3.0, 3.5, 2.5], data)
        assert s.max_abs == 0.5
        assert s.mean_abs == pytest.approx(1.0 / 3.0)
        assert s.spread == 1.0
        assert s.rel_std == pytest.approx(s.std / 3.0)

    def test_zero_sum_relative_is_nan(self):
        data = np.array([1.0, -1.0])
        s = error_stats([0.0, 1e-16], data)
        assert math.isnan(s.rel_std)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            error_stats([], np.array([1.0]))

    def test_boxplot_summary_ordering(self):
        data = np.array([1.0, 2.0])
        vals = 3.0 + np.linspace(-1e-10, 1e-10, 50)
        b = boxplot_summary(vals, data)
        assert b.whisker_low <= b.q1 <= b.median <= b.q3 <= b.whisker_high

    def test_boxplot_outliers_detected(self):
        data = np.array([0.0])
        vals = np.concatenate([np.full(30, 1e-15), [1e-9]])
        b = boxplot_summary(vals, data)
        assert 1e-9 in b.outliers


class TestBounds:
    def test_analytical_formula(self):
        x = np.array([1.0, -2.0, 3.0])
        assert analytical_bound(x) == 3 * UNIT_ROUNDOFF * 6.0

    def test_statistical_below_analytical_for_large_n(self):
        x = np.ones(10_000)
        assert statistical_bound(x) < analytical_bound(x)

    def test_bounds_actually_bound(self):
        # measured serial-sum error must sit below the analytical bound
        rng = np.random.default_rng(0)
        x = rng.uniform(-1000, 1000, 5000)
        from fractions import Fraction

        from repro.exact import exact_sum_fraction

        v = float(np.cumsum(x)[-1])
        err = abs(float(Fraction(v) - exact_sum_fraction(x)))
        assert err < analytical_bound(x)

    def test_empty(self):
        assert analytical_bound(np.array([])) == 0.0
        assert statistical_bound(np.array([])) == 0.0

    def test_condition_relative_bound(self):
        assert condition_based_relative_bound(1e6, 100) == 100 * UNIT_ROUNDOFF * 1e6
        assert math.isinf(condition_based_relative_bound(math.inf, 10))
        with pytest.raises(ValueError):
            condition_based_relative_bound(1.0, -1)
