"""Compiled-schedule engine: bitwise pins against the generic node-walk.

The batched ensemble engine (:mod:`repro.trees.schedule`) and the 2-D
balanced/serial kernels are only admissible because every value they produce
is bitwise equal to :func:`evaluate_tree_generic` — the literal accumulator
walk that serves as the semantic oracle.  These tests pin that equality for
every VectorOps algorithm over balanced, serial, skewed and random shapes
(including odd leaf counts and n=1), plus the old-path/new-path equivalence
of :func:`evaluate_ensemble` under fixed seeds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summation import get_algorithm
from repro.trees import (
    balanced,
    balanced_ensemble_vops,
    clear_schedule_cache,
    compile_tree,
    ensemble_via_schedule,
    evaluate_balanced_vectorized,
    evaluate_ensemble,
    evaluate_tree,
    evaluate_tree_generic,
    random_shape,
    schedule_cache_info,
    serial,
    skewed,
    structural_key,
)
from repro.util.rng import permutation_stream

#: every algorithm exposing VectorOps (ST, K, Neumaier, CP, pairwise, DD)
VOPS_CODES = ("ST", "K", "KBN", "CP", "PW", "DD")


def _mixed_magnitudes(n: int, seed: int) -> np.ndarray:
    """Signed operands spanning ~16 decades — hard mode for compensation."""
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, n) * 10.0 ** rng.integers(-8, 9, size=n)


def _shapes(n: int, seed: int):
    yield balanced(n)
    yield serial(n)
    yield random_shape(n, seed=seed)
    yield skewed(n, 0.35)
    yield skewed(n, 0.8)


class TestCompile:
    def test_structural_key_is_identity_free(self):
        assert structural_key(balanced(33)) == structural_key(balanced(33))
        assert structural_key(balanced(33)) != structural_key(serial(33))
        assert structural_key(random_shape(33, seed=1)) != structural_key(
            random_shape(33, seed=2)
        )

    def test_cache_shares_compiled_schedules_across_instances(self):
        clear_schedule_cache()
        first = compile_tree(balanced(65))
        second = compile_tree(balanced(65))  # distinct tree object, same key
        assert first is second
        info = schedule_cache_info()
        assert info["misses"] == 1 and info["hits"] == 1

    def test_clear_hook_bounds_memory(self):
        compile_tree(random_shape(17, seed=3))
        clear_schedule_cache()
        info = schedule_cache_info()
        assert info["size"] == 0 and info["hits"] == 0 and info["misses"] == 0

    def test_cache_bypass(self):
        clear_schedule_cache()
        a = compile_tree(balanced(9), cache=False)
        b = compile_tree(balanced(9), cache=False)
        assert a is not b
        assert schedule_cache_info()["size"] == 0

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 40, 127])
    def test_levels_partition_schedule(self, n):
        for tree in _shapes(n, seed=n):
            compiled = compile_tree(tree, cache=False)
            assert compiled.depth == tree.depth()
            outs = np.concatenate([lvl[2] for lvl in compiled.levels]) if n > 1 else []
            # every internal slot produced exactly once, in dependency order
            assert sorted(outs) == list(range(n, 2 * n - 1))
            produced = set(range(n))
            for left, right, out in compiled.levels:
                assert set(left) <= produced and set(right) <= produced
                produced |= set(out.tolist())


class TestEngineBitwise:
    @pytest.mark.parametrize("code", VOPS_CODES)
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 17, 64, 255])
    def test_engine_matches_generic_walk(self, code, n):
        alg = get_algorithm(code)
        x = _mixed_magnitudes(n, seed=n + 1)
        for tree in _shapes(n, seed=n):
            expected = evaluate_tree_generic(tree, x, alg)
            got = float(compile_tree(tree, cache=False).execute(x, alg.vector_ops)[0])
            assert got == expected, (code, n, tree.kind)

    @pytest.mark.parametrize("code", VOPS_CODES)
    def test_engine_batched_rows_match_per_tree_walk(self, code):
        n, n_trees = 41, 7
        alg = get_algorithm(code)
        x = _mixed_magnitudes(n, seed=5)
        tree = random_shape(n, seed=11)
        perms = list(permutation_stream(n, n_trees, 99))
        batch = ensemble_via_schedule(tree, x[np.array(perms)], alg.vector_ops)
        for row, p in zip(batch, perms):
            assert row == evaluate_tree_generic(tree, x[p], alg)

    @pytest.mark.parametrize("code", VOPS_CODES)
    def test_evaluate_tree_routes_custom_shapes_through_engine(self, code):
        alg = get_algorithm(code)
        x = _mixed_magnitudes(33, seed=2)
        tree = random_shape(33, seed=7)
        assert evaluate_tree(tree, x, alg) == evaluate_tree(
            tree, x, alg, force_generic=True
        )

    @given(
        n=st.integers(min_value=1, max_value=60),
        shape_seed=st.integers(0, 2**32 - 1),
        data_seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_engine_matches_walk_on_random_structures(self, n, shape_seed, data_seed):
        tree = random_shape(n, seed=shape_seed)
        x = _mixed_magnitudes(n, seed=data_seed)
        for code in ("ST", "K", "CP"):
            alg = get_algorithm(code)
            got = float(compile_tree(tree).execute(x, alg.vector_ops)[0])
            assert got == evaluate_tree_generic(tree, x, alg)


class TestBalanced2D:
    @pytest.mark.parametrize("code", VOPS_CODES)
    @pytest.mark.parametrize("n", [1, 2, 3, 9, 100, 257])
    def test_matrix_sweep_matches_single_row_kernel(self, code, n):
        alg = get_algorithm(code)
        x = _mixed_magnitudes(n, seed=n + 3)
        perms = np.array(list(permutation_stream(n, 5, 13)))
        batch = balanced_ensemble_vops(x[perms], alg.vector_ops)
        for row, p in zip(batch, perms):
            assert row == evaluate_balanced_vectorized(x[p], alg)
            assert row == evaluate_tree_generic(balanced(n), x[p], alg)


class TestEnsembleEquivalence:
    """New batched `evaluate_ensemble` paths vs the seed's per-tree loops."""

    @pytest.mark.parametrize("code", VOPS_CODES)
    def test_balanced_new_path_equals_old_per_perm_loop(self, code):
        n, n_trees, seed = 97, 11, 123
        alg = get_algorithm(code)
        x = _mixed_magnitudes(n, seed=21)
        old = np.array(
            [
                evaluate_balanced_vectorized(x[p], alg)
                for p in permutation_stream(n, n_trees, seed)
            ]
        )
        # tiny batch budget forces the multi-batch path
        new = evaluate_ensemble(x, "balanced", alg, n_trees, seed=seed, batch_elems=300)
        assert np.array_equal(old, new)

    @pytest.mark.parametrize("code", ("ST", "K", "KBN", "CP"))
    @pytest.mark.parametrize("shape_kind", ("random", "skewed"))
    def test_tree_shaped_ensemble_equals_generic_loop(self, code, shape_kind):
        n, n_trees, seed = 65, 9, 7
        alg = get_algorithm(code)
        x = _mixed_magnitudes(n, seed=4)
        tree = random_shape(n, seed=31) if shape_kind == "random" else skewed(n, 0.5)
        old = np.array(
            [
                evaluate_tree_generic(tree, x[p], alg)
                for p in permutation_stream(n, n_trees, seed)
            ]
        )
        new = evaluate_ensemble(x, tree, alg, n_trees, seed=seed, batch_elems=500)
        assert np.array_equal(old, new)

    def test_tree_shaped_ensemble_without_vops_still_works(self):
        # SO imposes its own operand order and has no elementwise state
        alg = get_algorithm("SO")
        assert alg.vector_ops is None
        x = _mixed_magnitudes(12, seed=6)
        tree = random_shape(12, seed=8)
        old = np.array(
            [
                evaluate_tree_generic(tree, x[p], alg)
                for p in permutation_stream(12, 4, 3)
            ]
        )
        new = evaluate_ensemble(x, tree, alg, 4, seed=3)
        assert np.array_equal(old, new)

    def test_single_leaf_ensemble(self):
        out = evaluate_ensemble(np.array([3.5]), "balanced", get_algorithm("K"), 4, seed=1)
        assert out.tolist() == [3.5] * 4

    def test_mismatched_tree_raises(self):
        with pytest.raises(ValueError, match="leaf"):
            evaluate_ensemble(np.ones(8), random_shape(9, seed=1), get_algorithm("ST"), 3)

    def test_unknown_shape_string_raises(self):
        with pytest.raises(ValueError, match="shape"):
            evaluate_ensemble(np.ones(8), "bushy", get_algorithm("ST"), 3)

    def test_identity_assignment_first_for_tree_shapes(self):
        x = _mixed_magnitudes(31, seed=14)
        tree = random_shape(31, seed=2)
        vals = evaluate_ensemble(x, tree, get_algorithm("CP"), 5, seed=9)
        assert vals[0] == evaluate_tree_generic(tree, x, get_algorithm("CP"))


class TestCompiledKernels:
    """The optional C sweep must be bitwise-equal to the NumPy sweep.

    These tests are meaningful both ways: with a compiler present they pin
    the fused C kernels against the pure-NumPy level sweep (itself pinned
    against the generic walk above); without one, ``has_kernel`` is False
    and the dispatch cleanly stays on NumPy.
    """

    def test_numpy_fallback_always_usable(self):
        # allow_ckernel=False must work regardless of compiler availability
        vops = get_algorithm("K").vector_ops
        mat = np.stack([_mixed_magnitudes(9, seed=s) for s in range(4)])
        out = balanced_ensemble_vops(mat, vops, allow_ckernel=False)
        tree = balanced(9)
        ref = np.array(
            [evaluate_tree_generic(tree, row, get_algorithm("K")) for row in mat]
        )
        assert np.array_equal(ref, out)

    @pytest.mark.parametrize("code", VOPS_CODES)
    @pytest.mark.parametrize("n", (2, 3, 5, 8, 31, 64, 257))
    def test_ckernel_matches_numpy_sweep(self, code, n):
        from repro.trees import _ckernels

        vops = get_algorithm(code).vector_ops
        if not _ckernels.has_kernel(vops):
            pytest.skip("compiled kernels unavailable")
        mat = np.stack(
            [_mixed_magnitudes(n, seed=100 + s) for s in range(6)]
        )
        ref = balanced_ensemble_vops(mat, vops, allow_ckernel=False)
        got = _ckernels.sweep_matrix(mat, vops)
        assert np.array_equal(ref, got)

    @pytest.mark.parametrize("code", VOPS_CODES)
    def test_ckernel_indexed_matches_matrix_mode(self, code):
        from repro.trees import _ckernels

        vops = get_algorithm(code).vector_ops
        if not _ckernels.has_kernel(vops):
            pytest.skip("compiled kernels unavailable")
        n = 53
        x = _mixed_magnitudes(n, seed=21)
        perms = np.stack(list(permutation_stream(n, 8, 13)))
        via_idx = _ckernels.sweep_indexed(x, perms, vops)
        via_mat = _ckernels.sweep_matrix(x[perms], vops)
        assert np.array_equal(via_idx, via_mat)

    def test_ensemble_perms_parameter_matches_seeded_stream(self):
        alg = get_algorithm("K")
        n, n_trees, seed = 40, 9, 17
        x = _mixed_magnitudes(n, seed=19)
        perms = np.stack(list(permutation_stream(n, n_trees, seed)))
        assert np.array_equal(
            evaluate_ensemble(x, "balanced", alg, n_trees, seed=seed),
            evaluate_ensemble(x, "balanced", alg, n_trees, perms=perms),
        )

    def test_ensemble_perms_validation(self):
        alg = get_algorithm("K")
        x = np.ones(4)
        with pytest.raises(ValueError, match="shape"):
            evaluate_ensemble(x, "balanced", alg, 3, perms=np.zeros((2, 4), dtype=np.int64))
        with pytest.raises(ValueError, match="integer"):
            evaluate_ensemble(x, "balanced", alg, 2, perms=np.zeros((2, 4)))
        bad = np.zeros((2, 4), dtype=np.int64)
        bad[1, 2] = 7  # out of range
        with pytest.raises(ValueError, match="out-of-range"):
            evaluate_ensemble(x, "balanced", alg, 2, perms=bad)
