"""Self-lint gate: this repository must stay clean under its own linter.

The acceptance contract for :mod:`repro.analysis`: ``repro-lint src tests
examples`` exits 0 against the committed baseline, and exits non-zero the
moment any FP001-FP008 violation is (re)introduced; with ``--flow`` the
same holds for the whole-program FP009-FP013 rules and the serving-path
determinism certificates.  Keeping this as a
tier-1 test makes the linter self-enforcing — a PR that adds a bare ``sum()``
to a summation kernel fails CI even if the author never ran the CLI.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Baseline, lint_paths
from repro.analysis.cli import run
from tests.analysis.fixtures import BAD, RULE_IDS, materialize

REPO = Path(__file__).resolve().parents[1]
SWEEP = [REPO / "src", REPO / "tests", REPO / "examples"]
BASELINE = REPO / ".repro-lint-baseline.json"


def test_baseline_is_committed_and_empty():
    """The repo lints clean outright; the baseline exists only as the CI
    hand-off point and must not quietly accumulate accepted debt."""
    assert BASELINE.exists()
    assert len(Baseline.load(BASELINE)) == 0


def test_repo_lints_clean():
    result = lint_paths(SWEEP, baseline=Baseline.load(BASELINE))
    formatted = "\n".join(f.format_text() for f in result.findings + result.parse_errors)
    assert result.clean, f"repo no longer lints clean:\n{formatted}"
    assert result.n_files > 100  # the sweep really covered the tree


def test_cli_gate_exits_zero():
    argv = [str(p) for p in SWEEP] + ["--baseline", str(BASELINE)]
    assert run(argv) == 0


def test_introduced_violations_fail_the_gate(tmp_path):
    """Every rule's known-bad fixture must flip the gate to non-zero."""
    for rule_id in RULE_IDS:
        rel_path, source = BAD[rule_id][0]
        materialize(tmp_path / rule_id, rel_path, source)
    result = lint_paths([tmp_path], baseline=Baseline.load(BASELINE))
    assert not result.clean
    assert {f.rule_id for f in result.findings} == set(RULE_IDS)
    assert run([str(tmp_path), "--baseline", str(BASELINE)]) == 1


def test_flow_gate_is_clean():
    """The whole-program pass (FP009-FP013) finds nothing unguarded, and
    every serving-entrypoint certificate resolves clean."""
    from repro.analysis.flow import flow_certificates

    result = lint_paths(SWEEP, baseline=Baseline.load(BASELINE), flow=True)
    formatted = "\n".join(f.format_text() for f in result.findings)
    assert result.clean, f"flow gate no longer clean:\n{formatted}"
    certs = flow_certificates(result.flow)
    assert certs and all(c["resolved"] and c["clean"] for c in certs), certs


def test_cli_flow_gate_exits_zero():
    argv = [str(p) for p in SWEEP] + ["--baseline", str(BASELINE), "--flow"]
    assert run(argv) == 0
