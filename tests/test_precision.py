"""Precision emulation and the reduction tuner (Sec. III.C)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision import (
    EmulatedPrecisionSum,
    TuningResult,
    round_array_to_precision,
    round_to_precision,
    tune_precision,
)

moderate = st.floats(allow_nan=False, allow_infinity=False, min_value=-1e150, max_value=1e150)


class TestRounding:
    def test_matches_float32_at_24_bits(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1e30, 1e30, 50_000)
        assert np.array_equal(
            round_array_to_precision(x, 24), np.float32(x).astype(np.float64)  # repro: allow[FP005] -- float32 rounding is the behaviour under test
        )

    @given(moderate, st.integers(min_value=1, max_value=53))
    @settings(max_examples=60)
    def test_idempotent(self, x, p):
        once = round_to_precision(x, p)
        assert round_to_precision(once, p) == once

    @given(moderate, st.integers(min_value=1, max_value=52))
    @settings(max_examples=60)
    def test_error_within_half_ulp_p(self, x, p):
        r = round_to_precision(x, p)
        if x == 0.0:
            assert r == 0.0
            return
        # |x - r| <= 2**(e - p) with 2**e <= |x| < 2**(e+1)
        e = math.frexp(abs(x))[1]
        assert abs(x - r) <= math.ldexp(1.0, e - p)

    @given(st.integers(min_value=1, max_value=53))
    def test_signature_preserved(self, p):
        assert round_to_precision(-1.5, p) == -round_to_precision(1.5, p)
        assert round_to_precision(0.0, p) == 0.0

    def test_p53_identity(self):
        assert round_to_precision(0.1, 53) == 0.1  # repro: allow[FP007] -- exact identity at p=53 is the property under test

    def test_validation(self):
        with pytest.raises(ValueError):
            round_to_precision(1.0, 0)
        with pytest.raises(ValueError):
            round_array_to_precision(np.ones(2), 54)

    def test_scalar_vector_agree(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1e5, 1e5, 500)
        for p in (7, 24, 45):
            v = round_array_to_precision(x, p)
            s = np.array([round_to_precision(float(t), p) for t in x])
            assert np.array_equal(v, s)


class TestEmulatedSum:
    def test_lower_precision_lower_accuracy(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-1.0, 1.0, 2000)
        exact = float(np.sum(np.float128(x))) if hasattr(np, "float128") else math.fsum(x.tolist())
        errs = {
            p: abs(EmulatedPrecisionSum(p).sum_array(x) - math.fsum(x.tolist()))
            for p in (16, 24, 38, 53)
        }
        assert errs[16] > errs[24] > errs[38] >= errs[53]

    def test_p53_matches_standard(self):
        from repro.summation import get_algorithm

        rng = np.random.default_rng(3)
        x = rng.uniform(-1.0, 1.0, 1000)
        assert EmulatedPrecisionSum(53).sum_array(x) == get_algorithm("ST").sum_array(x)

    def test_accumulator_merge(self):
        alg = EmulatedPrecisionSum(24)
        a = alg.make_accumulator()
        a.add_array(np.ones(100) * 0.1)
        b = alg.make_accumulator()
        b.add_array(np.ones(100) * 0.1)
        a.merge(b)
        assert a.result() == pytest.approx(20.0, rel=1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            EmulatedPrecisionSum(0)
        assert EmulatedPrecisionSum(24).code == "P24"


class TestTuner:
    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(4)
        return rng.uniform(0.5, 1.5, 3000)

    def test_loose_tolerance_picks_low_precision(self, workload):
        loose = tune_precision(workload, 1e-3, seed=5)
        tight = tune_precision(workload, 1e-12, seed=5)
        assert loose.feasible and tight.feasible
        assert loose.precision_bits < tight.precision_bits
        assert loose.memory_saving > tight.memory_saving

    def test_result_actually_meets_tolerance(self, workload):
        res = tune_precision(workload, 1e-6, seed=6, n_orders=8)
        assert res.worst_rel_error <= 1e-6

    def test_infeasible_reported(self):
        # exact-zero target on a cancelling set: no finite precision of the
        # plain iterative sum achieves rel error 0 here
        from repro.generators import zero_sum_set

        data = zero_sum_set(512, dr=32, seed=7)
        res = tune_precision(data, 0.0, candidates=(53, 40), seed=8, n_orders=4)
        assert not res.feasible
        assert res.precision_bits == 53

    def test_greedy_vs_exhaustive_agree_on_monotone_case(self, workload):
        g = tune_precision(workload, 1e-8, seed=9, greedy=True)
        e = tune_precision(workload, 1e-8, seed=9, greedy=False)
        assert g.precision_bits == e.precision_bits

    def test_validation(self, workload):
        with pytest.raises(ValueError):
            tune_precision(workload, -1.0)
        with pytest.raises(ValueError):
            tune_precision(np.array([]), 1e-6)
        with pytest.raises(ValueError):
            tune_precision(workload, 1e-6, candidates=(60,))
