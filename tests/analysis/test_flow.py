"""Whole-program flow pass: call-graph resolution, FP009-FP013, certificates.

Fixture projects are materialised as multi-file packages under ``tmp_path``
(the hazards under test only exist *across* files, so single-snippet
fixtures cannot express them).  Each true-positive test asserts not just
that the rule fires but that the reported call chain is the real
source-to-sink path — the chain is the evidence a reviewer acts on.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.flow import (
    FLOW_RULE_IDS,
    SERVING_ENTRYPOINTS,
    analyze_files,
    build_callgraph,
    certify_serving_path,
    flow_certificates,
    module_name_for,
    serving_flow_verdict,
)
from repro.obs import get_registry

REPO = Path(__file__).resolve().parents[2]


def _write(tmp_path: Path, files: dict) -> list:
    paths = []
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        paths.append(target)
    return sorted(paths)


def _flow(tmp_path: Path, files: dict):
    return analyze_files(_write(tmp_path, files))


def _has_edge(graph, caller: str, callee: str, kind: str) -> bool:
    return any(
        e.caller == caller and e.callee == callee and e.kind == kind
        for e in graph.edges
    )


# -- call-graph construction ---------------------------------------------------


class TestCallGraph:
    def test_module_name_walks_init_packages(self, tmp_path):
        paths = _write(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/sub/__init__.py": "",
                "pkg/sub/mod.py": "def f():\n    return 1\n",
                "plain.py": "def g():\n    return 2\n",
            },
        )
        names = {module_name_for(p) for p in paths}
        assert "pkg.sub.mod" in names and "plain" in names
        graph = build_callgraph(paths)
        assert "pkg.sub.mod:f" in graph.functions
        assert "plain:g" in graph.functions

    def test_decorated_function_keeps_call_edges(self, tmp_path):
        graph = build_callgraph(
            _write(
                tmp_path,
                {
                    "pkg/__init__.py": "",
                    "pkg/deco.py": (
                        "import functools\n"
                        "def wrap(fn):\n"
                        "    @functools.wraps(fn)\n"
                        "    def inner(*a, **k):\n"
                        "        return fn(*a, **k)\n"
                        "    return inner\n"
                        "@wrap\n"
                        "def leaf():\n"
                        "    return 1\n"
                        "def caller():\n"
                        "    return leaf()\n"
                    ),
                },
            )
        )
        assert _has_edge(graph, "pkg.deco:caller", "pkg.deco:leaf", "call")
        assert graph.functions["pkg.deco:leaf"].decorators == ("wrap",)
        # the nested def escapes its factory as a ref edge
        assert _has_edge(graph, "pkg.deco:wrap", "pkg.deco:wrap.inner", "ref")

    def test_staticmethod_and_classmethod_resolution(self, tmp_path):
        graph = build_callgraph(
            _write(
                tmp_path,
                {
                    "pkg/__init__.py": "",
                    "pkg/tool.py": (
                        "class Tool:\n"
                        "    @staticmethod\n"
                        "    def s():\n"
                        "        return 1\n"
                        "    @classmethod\n"
                        "    def c(cls):\n"
                        "        return cls.s()\n"
                        "def use():\n"
                        "    return Tool.s() + Tool.c()\n"
                    ),
                },
            )
        )
        assert _has_edge(graph, "pkg.tool:use", "pkg.tool:Tool.s", "call")
        assert _has_edge(graph, "pkg.tool:use", "pkg.tool:Tool.c", "call")
        assert _has_edge(graph, "pkg.tool:Tool.c", "pkg.tool:Tool.s", "call")

    def test_lambda_passed_to_map_parallel_is_a_pool_target(self, tmp_path):
        graph = build_callgraph(
            _write(
                tmp_path,
                {
                    "pkg/__init__.py": "",
                    "pkg/lam.py": (
                        "from repro.util.parallel import map_parallel\n"
                        "def run(xs):\n"
                        "    return map_parallel(lambda v: v + 1.0, xs)\n"
                    ),
                },
            )
        )
        lambdas = [fq for fq, fn in graph.functions.items() if fn.is_lambda]
        assert len(lambdas) == 1 and lambdas[0].startswith("pkg.lam:run.<lambda>@")
        assert _has_edge(graph, "pkg.lam:run", lambdas[0], "pool")
        assert lambdas[0] in graph.pool_targets

    def test_reexport_through_package_init_resolves(self, tmp_path):
        graph = build_callgraph(
            _write(
                tmp_path,
                {
                    "pkg/__init__.py": "from pkg.core import compute\n",
                    "pkg/core.py": "def compute(x):\n    return x\n",
                    "pkg/user.py": (
                        "from pkg import compute\n"
                        "def go():\n"
                        "    return compute(1)\n"
                    ),
                },
            )
        )
        assert _has_edge(graph, "pkg.user:go", "pkg.core:compute", "call")

    def test_module_level_worker_state_registration_recorded(self, tmp_path):
        graph = build_callgraph(
            _write(
                tmp_path,
                {
                    "pkg/__init__.py": "",
                    "pkg/state.py": (
                        "from repro.util.pool import register_worker_state\n"
                        "def _build():\n"
                        "    return {}\n"
                        "register_worker_state('cache', _build)\n"
                    ),
                },
            )
        )
        assert "pkg.state:_build" in graph.registered_worker_init


# -- FP009: nondeterminism source reachable from a reduction -------------------


_FP009_PROJECT = {
    "pkg/__init__.py": "",
    "pkg/rng.py": (
        "import numpy as np\n"
        "def draw(n):\n"
        "    rng = np.random.default_rng()\n"
        "    return rng.random(n)\n"
    ),
    "pkg/mid.py": (
        "from pkg.rng import draw\n"
        "def sample(n):\n"
        "    return draw(n)\n"
    ),
    "pkg/serve.py": (
        "from pkg.mid import sample\n"
        "def total(n):\n"
        "    return sum(sample(n))\n"
    ),
}


class TestFP009:
    def test_source_three_calls_from_sink_fires_with_chain(self, tmp_path):
        analysis = _flow(tmp_path, _FP009_PROJECT)
        hits = [f for f in analysis.findings if f.rule_id == "FP009"]
        assert len(hits) == 1
        f = hits[0]
        assert f.path.endswith("pkg/rng.py")  # anchored at the SOURCE site
        assert "default_rng() without a seed" in f.message
        assert (
            "call chain: pkg.serve:total -> pkg.mid:sample -> pkg.rng:draw"
            in f.message
        )

    def test_inline_suppression_guards_the_source(self, tmp_path):
        files = dict(_FP009_PROJECT)
        files["pkg/rng.py"] = (
            "import numpy as np\n"
            "def draw(n):\n"
            "    # repro: allow[FP009] -- fixture: deliberate entropy\n"
            "    rng = np.random.default_rng()\n"
            "    return rng.random(n)\n"
        )
        analysis = _flow(tmp_path, files)
        assert not [f for f in analysis.findings if f.rule_id == "FP009"]
        assert analysis.n_suppressed >= 1
        assert any(rule == "FP009" for rule, _, _ in analysis.guarded_sites)

    def test_env_read_on_the_path_fires(self, tmp_path):
        analysis = _flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/cfg.py": (
                    "import os\n"
                    "def knob():\n"
                    "    return int(os.environ.get('THRESH', '4'))\n"
                ),
                "pkg/serve.py": (
                    "from pkg.cfg import knob\n"
                    "def total(xs):\n"
                    "    if len(xs) > knob():\n"
                    "        return sum(xs)\n"
                    "    return 0.0\n"
                ),
            },
        )
        hits = [f for f in analysis.findings if f.rule_id == "FP009"]
        assert len(hits) == 1
        assert "env-read" in hits[0].message
        assert "pkg.serve:total -> pkg.cfg:knob" in hits[0].message

    def test_source_unreachable_from_any_sink_stays_quiet(self, tmp_path):
        files = dict(_FP009_PROJECT)
        # sever the chain: the sink no longer calls into the sampler
        files["pkg/serve.py"] = (
            "def total(xs):\n"
            "    return sum(xs)\n"
        )
        analysis = _flow(tmp_path, files)
        assert not [f for f in analysis.findings if f.rule_id == "FP009"]


# -- FP010: worker-visible module state ----------------------------------------


class TestFP010:
    def test_unregistered_global_write_in_pool_target_fires(self, tmp_path):
        analysis = _flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/state.py": (
                    "_CACHE = {}\n"
                    "def work(x):\n"
                    "    _CACHE[x] = x * 2\n"
                    "    return _CACHE[x]\n"
                ),
                "pkg/drive.py": (
                    "from pkg.state import work\n"
                    "from repro.util.parallel import map_parallel\n"
                    "def run(xs):\n"
                    "    return map_parallel(work, xs)\n"
                ),
            },
        )
        hits = [f for f in analysis.findings if f.rule_id == "FP010"]
        assert len(hits) == 1
        assert "pkg.state._CACHE" in hits[0].message
        assert "pkg.state:work" in hits[0].message

    def test_registered_factory_protocol_is_sanctioned(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/state.py": (
                "from repro.util.pool import register_worker_state\n"
                "_CACHE = {}\n"
                "def _build():\n"
                "    _CACHE['k'] = 1\n"
                "    return _CACHE\n"
                "register_worker_state('cache', _build)\n"
                "def lookup(x):\n"
                "    return _CACHE.get(x)\n"
            ),
            "pkg/drive.py": (
                "from pkg.state import lookup\n"
                "from repro.util.parallel import map_parallel\n"
                "def run(xs):\n"
                "    return map_parallel(lookup, xs)\n"
            ),
        }
        analysis = _flow(tmp_path, files)
        assert not [f for f in analysis.findings if f.rule_id == "FP010"]

        # control: identical project minus the registration line must fire
        files["pkg/state.py"] = files["pkg/state.py"].replace(
            "register_worker_state('cache', _build)\n", ""
        )
        control = _flow(tmp_path / "control", files)
        assert [f for f in control.findings if f.rule_id == "FP010"]


# -- FP011/FP012: shared-memory view lifetime and writes -----------------------


_VIEW_PROJECT = {
    "pkg/__init__.py": "",
    "pkg/views.py": (
        "import numpy as np\n"
        "from repro.util.pool import attach_shared\n"
        "def bad_return(handle):\n"
        "    with attach_shared(handle) as view:\n"
        "        part = view[2:]\n"
        "    return part\n"
        "def good_copy(handle):\n"
        "    with attach_shared(handle) as view:\n"
        "        out = np.array(view)\n"
        "    return out\n"
        "def bad_write(handle):\n"
        "    with attach_shared(handle) as view:\n"
        "        view[0] = 1.0\n"
        "def bad_out_kwarg(handle, x):\n"
        "    with attach_shared(handle) as view:\n"
        "        np.add(x, x, out=view)\n"
    ),
}


class TestViewHazards:
    def test_escaping_slice_fires_fp011_and_copy_does_not(self, tmp_path):
        analysis = _flow(tmp_path, _VIEW_PROJECT)
        fp011 = [f for f in analysis.findings if f.rule_id == "FP011"]
        assert len(fp011) == 1
        assert "bad_return" in fp011[0].message
        assert "good_copy" not in " ".join(f.message for f in analysis.findings)

    def test_writes_through_the_view_fire_fp012(self, tmp_path):
        analysis = _flow(tmp_path, _VIEW_PROJECT)
        fp012 = [f for f in analysis.findings if f.rule_id == "FP012"]
        assert len(fp012) == 2
        messages = " ".join(f.message for f in fp012)
        assert "bad_write" in messages and "bad_out_kwarg" in messages


# -- FP013: lock discipline ----------------------------------------------------


class TestFP013:
    def test_unlocked_private_mutation_fires_locked_stays_quiet(self, tmp_path):
        analysis = _flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/locked.py": (
                    "import threading\n"
                    "class Box:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._items = []\n"
                    "        self._count = 0\n"
                    "    def good(self, x):\n"
                    "        with self._lock:\n"
                    "            self._items.append(x)\n"
                    "            self._count += 1\n"
                    "    def bad(self, x):\n"
                    "        self._items.append(x)\n"
                    "    def also_bad(self):\n"
                    "        self._count = 0\n"
                ),
            },
        )
        fp013 = [f for f in analysis.findings if f.rule_id == "FP013"]
        assert len(fp013) == 2
        messages = " ".join(f.message for f in fp013)
        assert "Box.bad" in messages and "Box.also_bad" in messages
        assert "Box.good" not in messages


# -- certificates --------------------------------------------------------------


class TestCertificates:
    def test_unresolved_entrypoints_are_not_clean(self, tmp_path):
        analysis = _flow(tmp_path, _FP009_PROJECT)
        certs = flow_certificates(analysis)
        assert len(certs) == len(SERVING_ENTRYPOINTS)
        assert all(not c["resolved"] and not c["clean"] for c in certs)

    def test_real_tree_certificates_resolve_clean(self):
        certs = certify_serving_path(REPO / "src" / "repro")
        assert {c["entrypoint"] for c in certs} == {
            d for d, _ in SERVING_ENTRYPOINTS
        }
        for cert in certs:
            assert cert["schema"] == "repro-flow-certificate/1"
            assert cert["resolved"], cert["entrypoint"]
            assert cert["clean"], (cert["entrypoint"], cert["sources"], cert["hazards"])
            assert cert["n_functions"] > 5
            assert cert["counts"]["sources_unguarded"] == 0
            assert cert["counts"]["hazards_unguarded"] == 0
        # the pool's env knobs are guarded (suppressed with reasons), not
        # hidden: reduce_many's closure must list them
        by_name = {c["entrypoint"]: c for c in certs}
        many = by_name["AdaptiveReducer.reduce_many"]
        assert many["counts"]["sources_guarded"] >= 3
        assert all(s["guarded"] for s in many["sources"])
        assert all("chain" in s and " -> " in s["chain"] for s in many["sources"])

    def test_certify_serving_path_caches_per_root(self):
        a = certify_serving_path(REPO / "src" / "repro")
        b = certify_serving_path(REPO / "src" / "repro")
        assert a is b

    def test_serving_flow_verdict_is_clean(self):
        assert serving_flow_verdict(REPO / "src" / "repro") == "clean"

    def test_certificates_are_json_serialisable(self):
        certs = certify_serving_path(REPO / "src" / "repro")
        assert json.loads(json.dumps(certs)) == certs


# -- engine/perf/obs integration -----------------------------------------------


class TestIntegration:
    def test_whole_tree_flow_under_budget(self):
        from repro.analysis.engine import discover_files

        files = discover_files([REPO / "src"])
        analysis = analyze_files(files)
        assert not analysis.findings, [f.format_text() for f in analysis.findings]
        assert analysis.elapsed_s < 10.0
        assert len(analysis.graph.modules) > 100
        assert analysis.graph.n_edges > 500

    def test_flow_findings_merge_into_lint_paths(self, tmp_path):
        from repro.analysis import lint_paths

        _write(tmp_path, _FP009_PROJECT)
        result = lint_paths([tmp_path], flow=True)
        assert result.flow is not None
        assert any(f.rule_id == "FP009" for f in result.findings)
        # --select style filtering applies to flow rules too
        narrowed = lint_paths([tmp_path], flow=True, select=["FP010"])
        assert not [f for f in narrowed.findings if f.rule_id == "FP009"]

    def test_flow_metrics_recorded_when_enabled(self, tmp_path):
        reg = get_registry()
        reg.reset()
        reg.enable()
        try:
            _flow(tmp_path, {"pkg/__init__.py": "", "pkg/a.py": "def f():\n    return 1\n"})
            snap = reg.snapshot()
            hist = snap["histograms"].get("repro_lint_flow_seconds")
            assert hist and hist[0]["count"] >= 1
            counters = snap["counters"]
            assert counters.get("repro_lint_flow_files_total")
            assert counters.get("repro_lint_flow_edges_total") is not None
        finally:
            reg.disable()
            reg.reset()

    def test_flow_rule_ids_registered_with_flow_marker(self):
        from repro.analysis import all_rules

        flow_rules = [r for r in all_rules() if getattr(r, "flow", False)]
        assert sorted(r.id for r in flow_rules) == sorted(FLOW_RULE_IDS)
        # flow rules never fire from the per-file syntactic engine
        for rule in flow_rules:
            assert list(rule.check(None)) == []
