"""One parametrized contract per rule id: bad snippets fire, good ones don't."""

from __future__ import annotations

import pytest

from repro.analysis import all_rules, get_rule, lint_file
from tests.analysis.fixtures import BAD, GOOD, RULE_IDS, materialize


def _rule_ids_in(tmp_path, rel_path, source):
    findings, _, err = lint_file(materialize(tmp_path, rel_path, source))
    assert err is None, f"fixture failed to parse: {err}"
    return {f.rule_id for f in findings}


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_snippets_fire(rule_id, tmp_path):
    for i, (rel_path, source) in enumerate(BAD[rule_id]):
        seen = _rule_ids_in(tmp_path / str(i), rel_path, source)
        assert rule_id in seen, f"{rule_id} bad snippet #{i} produced {seen or '{}'}"


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_good_snippets_stay_quiet(rule_id, tmp_path):
    for i, (rel_path, source) in enumerate(GOOD[rule_id]):
        seen = _rule_ids_in(tmp_path / str(i), rel_path, source)
        assert rule_id not in seen, f"{rule_id} good snippet #{i} flagged"


def test_registry_has_all_thirteen_rules():
    from repro.analysis.flow import FLOW_RULE_IDS

    ids = [r.id for r in all_rules()]
    # sorted, deduplicated: syntactic FP001..FP008 then flow FP009..FP013
    assert ids == RULE_IDS + list(FLOW_RULE_IDS)
    for rule_id in ids:
        rule = get_rule(rule_id)
        assert rule.id == rule_id
        assert rule.title and rule.rationale
    # flow rules are catalogue entries only for the per-file engine
    assert [r.id for r in all_rules() if getattr(r, "flow", False)] == list(
        FLOW_RULE_IDS
    )


def test_unknown_rule_id_raises():
    with pytest.raises(KeyError):
        get_rule("FP999")


def test_fp001_dyadic_literal_is_warning_not_error(tmp_path):
    from repro.analysis import Severity

    findings, _, _ = lint_file(
        materialize(
            tmp_path,
            "src/tools/sev.py",
            "def f(x):\n    a = x == 0.5\n    b = x == 0.1\n    return a or b\n",
        )
    )
    severities = [f.severity for f in findings if f.rule_id == "FP001"]
    assert severities == [Severity.WARNING, Severity.ERROR]


def test_syntax_error_reported_as_fp000(tmp_path):
    findings, n_sup, err = lint_file(
        materialize(tmp_path, "src/tools/broken.py", "def f(:\n")
    )
    assert findings == [] and n_sup == 0
    assert err is not None and err.rule_id == "FP000"
