"""``repro-lint`` CLI contract: exit codes, formats, baseline workflow."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import run
from tests.analysis.fixtures import materialize

_CLEAN = "import math\ndef f(x):\n    return math.isclose(x, 0.1)\n"
_BAD = "def f(x):\n    if x == 0.1:\n        return 1\n    return 0\n"
_WARN_ONLY = "def f(x):\n    return x == 0.5\n"  # dyadic: FP001 warning


def _file(tmp_path, source, sub="src/tools/snippet.py"):
    return str(materialize(tmp_path, sub, source))


def test_clean_tree_exits_zero(tmp_path, capsys):
    assert run([_file(tmp_path, _CLEAN)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_findings_exit_one(tmp_path, capsys):
    assert run([_file(tmp_path, _BAD)]) == 1
    out = capsys.readouterr().out
    assert "FP001" in out and "1 finding(s)" in out


def test_json_format(tmp_path, capsys):
    assert run([_file(tmp_path, _BAD), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False and payload["files"] == 1
    assert payload["findings"][0]["rule"] == "FP001"
    assert "fingerprint" in payload["findings"][0]


def test_list_rules(capsys):
    assert run(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for i in range(1, 9):
        assert f"FP00{i}" in out
    for i in range(9, 14):
        assert f"FP{i:03d}" in out
    assert "(flow)" in out


def test_select_and_ignore(tmp_path):
    target = _file(tmp_path, _BAD)
    assert run([target, "--select", "FP006"]) == 0
    assert run([target, "--ignore", "FP001"]) == 0
    assert run([target, "--select", "FP001"]) == 1


def test_min_severity_filters_warnings(tmp_path):
    target = _file(tmp_path, _WARN_ONLY)
    assert run([target]) == 1
    assert run([target, "--min-severity", "error"]) == 0


def test_baseline_workflow(tmp_path, capsys):
    target = _file(tmp_path, _BAD)
    baseline = str(tmp_path / "baseline.json")
    assert run([target, "--baseline", baseline, "--write-baseline"]) == 0
    capsys.readouterr()
    # known findings are baselined away ...
    assert run([target, "--baseline", baseline]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # ... but a NEW finding still fails
    worse = _BAD + "def g(x):\n    return x != 0.3\n"
    target2 = _file(tmp_path / "more", worse)
    assert run([target2, "--baseline", baseline]) == 1


def test_usage_errors_exit_two(tmp_path):
    with pytest.raises(SystemExit) as exc:
        run(["--write-baseline", _file(tmp_path, _CLEAN)])
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        run([str(tmp_path / "does-not-exist")])
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        run([_file(tmp_path, _CLEAN), "--baseline", str(tmp_path / "missing.json")])
    assert exc.value.code == 2
    # a typo'd rule id must fail loudly, not select zero rules and pass
    with pytest.raises(SystemExit) as exc:
        run([_file(tmp_path, _BAD), "--select", "FP999"])
    assert exc.value.code == 2


def test_syntax_error_exits_two(tmp_path, capsys):
    """Parse errors outrank findings: exit 2, distinct from exit 1."""
    target = _file(tmp_path, "def f(:\n")
    assert run([target]) == 2
    assert "FP000" in capsys.readouterr().out


def test_write_baseline_refuses_parse_errors(tmp_path, capsys):
    """A baseline must never bless a tree the linter could not read."""
    bad = _file(tmp_path, _BAD)
    broken = _file(tmp_path / "b", "def f(:\n")
    baseline = tmp_path / "baseline.json"
    assert run([bad, broken, "--baseline", str(baseline), "--write-baseline"]) == 2
    captured = capsys.readouterr()
    assert "refusing" in captured.err
    assert not baseline.exists()


def test_sarif_format(tmp_path, capsys):
    assert run([_file(tmp_path, _BAD), "--format", "sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    (sarif_run,) = log["runs"]
    rule_ids = {r["id"] for r in sarif_run["tool"]["driver"]["rules"]}
    # the full catalogue ships even on clean runs: FP000 + all 13 rules
    assert {"FP000", "FP001", "FP009", "FP013"} <= rule_ids
    (result,) = sarif_run["results"]
    assert result["ruleId"] == "FP001" and result["level"] == "error"
    assert result["partialFingerprints"]["reproLintFingerprint/v1"]
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 2


def test_flow_mode_reports_certificates(tmp_path, capsys):
    assert run([_file(tmp_path, _CLEAN), "--flow"]) == 0
    out = capsys.readouterr().out
    assert "flow:" in out
    # entrypoints are not in a one-file fixture tree: reported, not hidden
    assert out.count("UNRESOLVED") == 4


def test_flow_certificates_written_to_file(tmp_path, capsys):
    target = _file(tmp_path, _CLEAN)
    certs_path = tmp_path / "certs.json"
    assert run([target, "--flow", "--certificates", str(certs_path)]) == 0
    capsys.readouterr()
    certs = json.loads(certs_path.read_text())
    assert len(certs) == 4
    assert all(c["schema"] == "repro-flow-certificate/1" for c in certs)


def test_certificates_require_flow(tmp_path):
    with pytest.raises(SystemExit) as exc:
        run([_file(tmp_path, _CLEAN), "--certificates", "-"])
    assert exc.value.code == 2
