"""``repro-lint`` CLI contract: exit codes, formats, baseline workflow."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import run
from tests.analysis.fixtures import materialize

_CLEAN = "import math\ndef f(x):\n    return math.isclose(x, 0.1)\n"
_BAD = "def f(x):\n    if x == 0.1:\n        return 1\n    return 0\n"
_WARN_ONLY = "def f(x):\n    return x == 0.5\n"  # dyadic: FP001 warning


def _file(tmp_path, source, sub="src/tools/snippet.py"):
    return str(materialize(tmp_path, sub, source))


def test_clean_tree_exits_zero(tmp_path, capsys):
    assert run([_file(tmp_path, _CLEAN)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_findings_exit_one(tmp_path, capsys):
    assert run([_file(tmp_path, _BAD)]) == 1
    out = capsys.readouterr().out
    assert "FP001" in out and "1 finding(s)" in out


def test_json_format(tmp_path, capsys):
    assert run([_file(tmp_path, _BAD), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False and payload["files"] == 1
    assert payload["findings"][0]["rule"] == "FP001"
    assert "fingerprint" in payload["findings"][0]


def test_list_rules(capsys):
    assert run(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for i in range(1, 9):
        assert f"FP00{i}" in out


def test_select_and_ignore(tmp_path):
    target = _file(tmp_path, _BAD)
    assert run([target, "--select", "FP006"]) == 0
    assert run([target, "--ignore", "FP001"]) == 0
    assert run([target, "--select", "FP001"]) == 1


def test_min_severity_filters_warnings(tmp_path):
    target = _file(tmp_path, _WARN_ONLY)
    assert run([target]) == 1
    assert run([target, "--min-severity", "error"]) == 0


def test_baseline_workflow(tmp_path, capsys):
    target = _file(tmp_path, _BAD)
    baseline = str(tmp_path / "baseline.json")
    assert run([target, "--baseline", baseline, "--write-baseline"]) == 0
    capsys.readouterr()
    # known findings are baselined away ...
    assert run([target, "--baseline", baseline]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # ... but a NEW finding still fails
    worse = _BAD + "def g(x):\n    return x != 0.3\n"
    target2 = _file(tmp_path / "more", worse)
    assert run([target2, "--baseline", baseline]) == 1


def test_usage_errors_exit_two(tmp_path):
    with pytest.raises(SystemExit) as exc:
        run(["--write-baseline", _file(tmp_path, _CLEAN)])
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        run([str(tmp_path / "does-not-exist")])
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        run([_file(tmp_path, _CLEAN), "--baseline", str(tmp_path / "missing.json")])
    assert exc.value.code == 2
    # a typo'd rule id must fail loudly, not select zero rules and pass
    with pytest.raises(SystemExit) as exc:
        run([_file(tmp_path, _BAD), "--select", "FP999"])
    assert exc.value.code == 2


def test_syntax_error_exits_one(tmp_path, capsys):
    target = _file(tmp_path, "def f(:\n")
    assert run([target]) == 1
    assert "FP000" in capsys.readouterr().out
