"""Known-bad / known-good source snippets for every lint rule.

Snippets are kept as strings (not checked-in ``.py`` files) so the self-lint
gate — which sweeps everything under ``tests/`` — never sees the violations
as real code.  Each test materialises a snippet into ``tmp_path`` at a
path chosen to satisfy the rule's ``applies_to`` predicate (FP002 only fires
inside accuracy-sensitive packages, FP007 only inside test files, ...).
"""

from __future__ import annotations

from pathlib import Path

#: rule id -> (relative path to write the snippet at, source) lists.
#: "bad" snippets must each produce >= 1 finding of that rule;
#: "good" snippets must produce none.
BAD: dict = {}
GOOD: dict = {}

_SRC = "src/repro/summation/snippet.py"  # inside a sensitive package
_PLAIN = "src/tools/snippet.py"  # outside every sensitive package
_TEST = "tests/test_snippet.py"

BAD["FP001"] = [
    (
        _PLAIN,
        "def f(x):\n"
        "    if x == 0.1:\n"
        "        return 1\n"
        "    return 0\n",
    ),
    (
        _PLAIN,
        "def g(x):\n"
        "    return x != 0.5\n",  # dyadic: still reported (as a warning)
    ),
]
GOOD["FP001"] = [
    (
        _PLAIN,
        "import math\n"
        "def f(x):\n"
        "    return math.isclose(x, 0.1)\n",
    ),
    (
        _PLAIN,
        "def g(n):\n"
        "    return n == 3\n",  # integer comparison
    ),
]

BAD["FP002"] = [
    (
        _SRC,
        "import numpy as np\n"
        "def f(x):\n"
        "    return float(np.sum(x))\n",
    ),
    (
        _SRC,
        "def g(xs):\n"
        "    return sum(xs)\n",
    ),
    (
        _SRC,
        "def h(x):\n"
        "    return x.sum()\n",
    ),
]
GOOD["FP002"] = [
    (
        _SRC,
        "def f(xs):\n"
        "    return sum(1 for v in xs if v > 0)\n",  # integer fold
    ),
    (
        _PLAIN,
        "def g(xs):\n"
        "    return sum(xs)\n",  # outside the sensitive packages
    ),
]

BAD["FP003"] = [
    (
        _PLAIN,
        "def f(xs):\n"
        "    acc = 0.0\n"
        "    for v in xs:\n"
        "        acc += v\n"
        "    return acc\n",
    ),
]
GOOD["FP003"] = [
    (
        _PLAIN,
        "def f(xs):\n"
        "    count = 0\n"
        "    for v in xs:\n"
        "        count += 1\n"
        "    return count\n",  # integer accumulator
    ),
]

BAD["FP004"] = [
    (
        _PLAIN,
        "def f(a, b):\n"
        "    s = a + b\n"
        "    bb = s - a\n"
        "    return bb\n",
    ),
]
GOOD["FP004"] = [
    (
        _PLAIN,
        "from repro.fp.eft import two_sum\n"
        "def f(a, b):\n"
        "    s, e = two_sum(a, b)\n"
        "    return e\n",
    ),
]

BAD["FP005"] = [
    (
        _PLAIN,
        "import numpy as np\n"
        "def f(x):\n"
        "    return x.astype(np.float32)\n",
    ),
    (
        _PLAIN,
        "import numpy as np\n"
        "def g(n):\n"
        "    return np.zeros(n, dtype='float32')\n",
    ),
]
GOOD["FP005"] = [
    (
        _PLAIN,
        "import numpy as np\n"
        "def f(x):\n"
        "    return x.astype(np.float64)\n",
    ),
]

BAD["FP006"] = [
    (
        _PLAIN,
        "def f(xs):\n"
        "    return sum(set(xs))\n",
    ),
    (
        _PLAIN,
        "import os\n"
        "def g(d):\n"
        "    total = 0.0\n"
        "    for name in os.listdir(d):\n"
        "        total += len(name)\n"
        "    return total\n",
    ),
]
GOOD["FP006"] = [
    (
        _PLAIN,
        "def f(xs):\n"
        "    return sum(sorted(set(xs)))\n",  # order pinned before reducing
    ),
    (
        # regression: sorted(set(...)) NESTED under another call used to be
        # flagged by the flat walk — the pin holds wherever it appears
        _PLAIN,
        "import numpy as np\n"
        "def f(xs):\n"
        "    return np.sum(np.array(sorted(set(xs))))\n",
    ),
    (
        _PLAIN,
        "def g(xs):\n"
        "    return sum(v * v for v in sorted(set(xs)))\n",
    ),
    (
        _PLAIN,
        "def h(d):\n"
        "    total = 0.0\n"
        "    for name in sorted(set(d)):\n"
        "        total += len(name)\n"
        "    return total\n",
    ),
]

BAD["FP007"] = [
    (
        _TEST,
        "def test_f():\n"
        "    assert 0.3 - 0.2 == 0.1\n",
    ),
]
GOOD["FP007"] = [
    (
        _TEST,
        "def test_f():\n"
        "    assert 1.0 + 1.5 == 2.5\n",  # dyadic literals assert exactness on purpose
    ),
    (
        _TEST,
        "import pytest\n"
        "def test_g():\n"
        "    assert 0.3 - 0.2 == pytest.approx(0.1)\n",
    ),
]

BAD["FP008"] = [
    (
        _PLAIN,
        "import numpy as np\n"
        "def f(n):\n"
        "    return np.random.rand(n)\n",  # legacy global-state RNG
    ),
    (
        _PLAIN,
        "def g(out=[]):\n"
        "    return out\n",  # mutable default
    ),
]
GOOD["FP008"] = [
    (
        _PLAIN,
        "import numpy as np\n"
        "def f(n, seed):\n"
        "    return np.random.default_rng(seed).random(n)\n",
    ),
    (
        _PLAIN,
        "def g(out=None):\n"
        "    return [] if out is None else out\n",
    ),
]

RULE_IDS = sorted(BAD)
assert RULE_IDS == sorted(GOOD) == [f"FP00{i}" for i in range(1, 9)]


def materialize(tmp_path: Path, rel_path: str, source: str) -> Path:
    """Write a snippet at a rule-appropriate relative path under tmp_path."""
    target = tmp_path / rel_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target
