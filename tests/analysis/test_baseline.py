"""Baseline multiset semantics and JSON roundtrip."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, lint_file, lint_paths
from tests.analysis.fixtures import materialize

_ONE_BAD = "def f(x):\n    if x == 0.1:\n        return 1\n    return 0\n"
_TWO_BAD = (
    "def f(x):\n"
    "    if x == 0.1:\n"
    "        return 1\n"
    "    if x == 0.1:\n"
    "        return 2\n"
    "    return 0\n"
)


def _findings(tmp_path, source):
    # always the SAME path: fingerprints embed the file path, so the
    # before/after comparisons below must overwrite in place
    findings, _, err = lint_file(
        materialize(tmp_path, "src/tools/snippet.py", source)
    )
    assert err is None
    return findings


def test_save_load_roundtrip(tmp_path):
    findings = _findings(tmp_path, _ONE_BAD)
    baseline = Baseline.from_findings(findings)
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert len(loaded) == len(baseline) == len(findings)
    new, baselined = loaded.partition(findings)
    assert new == [] and baselined == findings


def test_partition_is_a_multiset(tmp_path):
    # baseline records ONE occurrence; a second identical finding is new
    one = _findings(tmp_path, _ONE_BAD)
    baseline = Baseline.from_findings(one)
    two = _findings(tmp_path, _TWO_BAD)
    # same fingerprint (rule|path|snippet) for both occurrences
    assert {f.fingerprint() for f in two} == {f.fingerprint() for f in one}
    new, baselined = baseline.partition(two)
    assert len(baselined) == 1 and len(new) == 1


def test_fingerprint_survives_line_shifts(tmp_path):
    before = _findings(tmp_path, _ONE_BAD)
    shifted = _findings(tmp_path, "import math\n\n" + _ONE_BAD)
    assert before[0].line != shifted[0].line
    assert before[0].fingerprint() == shifted[0].fingerprint()
    new, baselined = Baseline.from_findings(before).partition(shifted)
    assert new == [] and len(baselined) == 1


def test_lint_paths_with_baseline_reports_clean(tmp_path):
    target = materialize(tmp_path, "src/tools/snippet.py", _ONE_BAD)
    dirty = lint_paths([target])
    assert not dirty.clean
    baseline = Baseline.from_findings(dirty.findings)
    clean = lint_paths([target], baseline=baseline)
    assert clean.clean and len(clean.baselined) == 1


def test_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError):
        Baseline.load(path)
