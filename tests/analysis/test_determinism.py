"""Static determinism audit: operator order-sensitivity × schedule variation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.determinism import Verdict, audit_reduction, audit_shapes
from repro.generators import zero_sum_set
from repro.selection.certify import Certificate, certify


class TestAuditReduction:
    @pytest.mark.parametrize("code", ["PR", "EX", "SO"])
    def test_deterministic_operators_are_bitwise_everywhere(self, code):
        report = audit_reduction(
            code, shape="arrival", jitter=1.0, fault_prob=0.5, permuted_leaves=True
        )
        assert report.verdict is Verdict.BITWISE
        assert report.bitwise_guaranteed
        assert report.order_independent_op
        assert report.hazards == ()
        # the schedule still varies — the operator just doesn't care
        assert report.schedule_varies

    @pytest.mark.parametrize("code", ["ST", "K", "CP"])
    def test_order_sensitive_on_fixed_schedule_is_conditional(self, code):
        report = audit_reduction(code, shape="balanced")
        assert report.verdict is Verdict.CONDITIONAL
        assert not report.schedule_varies
        assert report.hazards  # explains the condition

    def test_jitter_makes_arrival_nondeterministic(self):
        report = audit_reduction("ST", shape="arrival", jitter=0.5)
        assert report.verdict is Verdict.NONDETERMINISTIC
        assert any("jitter" in h for h in report.hazards)

    def test_unseeded_random_shape_is_nondeterministic(self):
        report = audit_reduction("K", shape="random", seeded=False)
        assert report.verdict is Verdict.NONDETERMINISTIC
        assert any("unseeded" in h for h in report.hazards)

    def test_seeded_random_shape_is_conditional(self):
        report = audit_reduction("K", shape="random", seeded=True)
        assert report.verdict is Verdict.CONDITIONAL

    def test_fault_injection_is_a_hazard(self):
        report = audit_reduction("CP", shape="balanced", fault_prob=0.01)
        assert report.verdict is Verdict.NONDETERMINISTIC
        assert any("fault" in h for h in report.hazards)

    def test_explain_mentions_code_and_verdict(self):
        report = audit_reduction("ST", shape="balanced", permuted_leaves=True)
        text = report.explain()
        assert "ST" in text and "nondeterministic" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            audit_reduction("ST", shape="mystery")
        with pytest.raises(ValueError):
            audit_reduction("ST", jitter=-1.0)
        with pytest.raises(ValueError):
            audit_reduction("ST", fault_prob=1.5)


class TestAuditShapes:
    def test_worst_case_wins(self):
        report = audit_shapes("ST", ["balanced", "serial"], permuted_leaves=True)
        assert report.verdict is Verdict.NONDETERMINISTIC

    def test_deterministic_operator_spans_all_shapes(self):
        report = audit_shapes("PR", ["balanced", "serial", "random"])
        assert report.verdict is Verdict.BITWISE

    def test_needs_shapes(self):
        with pytest.raises(ValueError):
            audit_shapes("ST", [])


class TestCertifyIntegration:
    def test_certificate_carries_static_verdict(self):
        data = zero_sum_set(512, dr=16, seed=0)
        cert = certify(data, "PR", 0.0, n_trees=10, seed=1)
        assert cert.static_verdict == "bitwise"
        st = certify(data, "ST", 1e-13, n_trees=10, seed=2)
        # the certify ensemble permutes leaves, so ST cannot be pinned down
        assert st.static_verdict == "nondeterministic"

    def test_static_verdict_survives_json(self):
        data = np.ones(64)
        cert = certify(data, "PR", 0.0, n_trees=10, seed=3)
        assert Certificate.from_json(cert.to_json()).static_verdict == "bitwise"

    def test_from_json_tolerates_older_certificates(self):
        data = np.ones(64)
        cert = certify(data, "ST", 1.0, n_trees=10, seed=4)
        import json

        payload = json.loads(cert.to_json())
        del payload["static_verdict"]
        old = Certificate.from_json(json.dumps(payload))
        assert old.static_verdict == ""
