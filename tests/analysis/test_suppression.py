"""Inline ``# repro: allow[...]`` suppression semantics."""

from __future__ import annotations

from repro.analysis import lint_file
from repro.analysis.base import parse_suppressions
from tests.analysis.fixtures import materialize

_BAD_LINE = "    if x == 0.1:\n        return 1\n    return 0\n"


def _lint(tmp_path, source):
    findings, n_sup, err = lint_file(
        materialize(tmp_path, "src/tools/snippet.py", source)
    )
    assert err is None
    return findings, n_sup


def test_same_line_allow_suppresses(tmp_path):
    findings, n_sup = _lint(
        tmp_path,
        "def f(x):\n    if x == 0.1:  # repro: allow[FP001]\n        return 1\n    return 0\n",
    )
    assert not any(f.rule_id == "FP001" for f in findings)
    assert n_sup == 1


def test_standalone_comment_suppresses_next_line(tmp_path):
    findings, n_sup = _lint(
        tmp_path,
        "def f(x):\n    # repro: allow[FP001]\n    if x == 0.1:\n        return 1\n    return 0\n",
    )
    assert not any(f.rule_id == "FP001" for f in findings)
    assert n_sup == 1


def test_allow_star_suppresses_any_rule(tmp_path):
    findings, n_sup = _lint(
        tmp_path, "def f(x):\n" + _BAD_LINE.replace("0.1:", "0.1:  # repro: allow[*]")
    )
    assert findings == [] and n_sup == 1


def test_reason_tail_is_accepted(tmp_path):
    findings, n_sup = _lint(
        tmp_path,
        "def f(x):\n    if x == 0.1:  # repro: allow[FP001] -- sentinel, exact\n"
        "        return 1\n    return 0\n",
    )
    assert findings == [] and n_sup == 1


def test_wrong_id_does_not_suppress(tmp_path):
    findings, n_sup = _lint(
        tmp_path,
        "def f(x):\n    if x == 0.1:  # repro: allow[FP006]\n        return 1\n    return 0\n",
    )
    assert any(f.rule_id == "FP001" for f in findings)
    assert n_sup == 0


def test_multiple_ids_in_one_allow(tmp_path):
    source = (
        "def f(xs):\n"
        "    acc = 0.0\n"
        "    for v in xs:\n"
        "        acc += v  # repro: allow[FP003,FP006]\n"
        "    return acc\n"
    )
    findings, n_sup = _lint(tmp_path, source)
    assert not any(f.rule_id == "FP003" for f in findings)
    assert n_sup == 1


def test_parse_suppressions_maps_lines_to_ids():
    source = (
        "x = 1\n"
        "y = 2  # repro: allow[FP001]\n"
        "# repro: allow[FP002, FP003]\n"
        "z = 3\n"
    )
    sup = parse_suppressions(source)
    assert sup[2] == {"FP001"}
    # a standalone comment covers its own line and the next
    assert sup[4] == {"FP002", "FP003"}
