"""Streaming selector: smoothing, hysteresis, decision log."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.generators import generate_sum_set, zero_sum_set
from repro.selection import StreamingSelector


def benign(seed: int) -> np.ndarray:
    return generate_sum_set(1000, 1.0, 8, seed=seed).values


def hostile(seed: int) -> np.ndarray:
    return zero_sum_set(1000, 32, seed=seed)


class TestEscalation:
    def test_immediate_escalation_on_crisis(self):
        # alpha=1 disables smoothing so the crisis profile hits the policy raw
        s = StreamingSelector(threshold=1e-13, alpha=1.0)
        for i in range(3):
            s.observe(benign(i))
        assert s.current_code == "ST"
        s.observe(hostile(10))
        assert s.current_code == "PR"
        assert s.n_switches == 1
        assert s.log[0].from_code == "ST" and s.log[0].to_code == "PR"

    def test_smoothed_escalation_still_escalates(self):
        # with smoothing the blended profile may select CP instead of PR,
        # but it must leave ST on the crisis step
        s = StreamingSelector(threshold=1e-13, alpha=0.3)
        for i in range(3):
            s.observe(benign(i))
        s.observe(hostile(10))
        assert s.current_code in ("CP", "PR")

    def test_deescalation_needs_cooldown(self):
        s = StreamingSelector(threshold=1e-13, cooldown=3, alpha=1.0, margin=1.0)
        s.observe(hostile(0))
        assert s.current_code == "PR"
        codes = [s.observe(benign(i)).code for i in range(5)]
        # stays on PR through the cooldown window, then drops
        assert codes[0] == "PR" and codes[1] == "PR"
        assert s.current_code == "ST"

    def test_smoothing_delays_deescalation(self):
        fast = StreamingSelector(threshold=1e-13, alpha=1.0, cooldown=1, margin=1.0)
        slow = StreamingSelector(threshold=1e-13, alpha=0.2, cooldown=1, margin=1.0)
        for s in (fast, slow):
            s.observe(hostile(0))
        fast_steps = slow_steps = None
        for i in range(60):
            if fast.observe(benign(i)).code == "ST" and fast_steps is None:
                fast_steps = i
            if slow.observe(benign(i)).code == "ST" and slow_steps is None:
                slow_steps = i
        assert fast_steps is not None
        assert slow_steps is None or slow_steps > fast_steps


class TestStability:
    def test_no_thrash_on_noisy_boundary(self):
        """Alternating near-boundary profiles must not flip the algorithm
        every step."""
        s = StreamingSelector(threshold=1e-13, cooldown=3)
        rng = np.random.default_rng(5)
        for i in range(30):
            k = 10.0 ** float(rng.uniform(2.5, 3.5))  # straddles ST/K-ish zone
            s.observe(generate_sum_set(1000, k, 8, seed=i).values)
        assert s.n_switches <= 3

    def test_chunks_sequence_accepted(self):
        s = StreamingSelector(threshold=1e-13)
        data = benign(1)
        d1 = s.observe([data[:500], data[500:]])
        assert d1.code == s.current_code

    def test_log_records_conditions(self):
        s = StreamingSelector(threshold=1e-13)
        s.observe(benign(0))
        s.observe(hostile(1))
        ev = s.log[0]
        assert math.isinf(ev.raw_condition)
        assert ev.step == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingSelector(alpha=0.0)
        with pytest.raises(ValueError):
            StreamingSelector(margin=0.5)
        with pytest.raises(ValueError):
            StreamingSelector(cooldown=0)
