"""FABsum blocked summation."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.exact import exact_sum_fraction
from repro.fp.properties import UNIT_ROUNDOFF
from repro.summation import FABSum, get_algorithm
from repro.summation.blocked import BlockedAccumulator


class TestFABSum:
    def test_registered(self):
        alg = get_algorithm("FB")
        assert alg.name == "fabsum-blocked"
        assert get_algorithm("ST").cost_rank <= alg.cost_rank <= get_algorithm("CP").cost_rank

    def test_accuracy_between_st_and_cp(self):
        from repro.generators import zero_sum_set

        data = zero_sum_set(16_384, dr=24, seed=0)
        e_st = abs(get_algorithm("ST").sum_array(data))
        e_fb = abs(FABSum(block=256).sum_array(data))
        e_cp = abs(get_algorithm("CP").sum_array(data))
        assert e_cp <= e_fb <= e_st or e_fb == 0.0

    def test_error_grows_with_block_size_on_average(self):
        """The b-dependence of the error is statistical; assert it on the
        mean over independent draws, not a single realisation."""
        sums = {64: 0.0, 16_384: 0.0}
        for seed in range(10):
            rng = np.random.default_rng(seed)
            base = rng.uniform(1, 2, 20_000) * 2.0 ** rng.integers(0, 25, 20_000)
            data = np.concatenate([base, -base])
            rng.shuffle(data)
            for b in sums:
                sums[b] += abs(FABSum(block=b).sum_array(data))
        assert sums[64] < sums[16_384]

    def test_error_bound_depends_on_block_not_n(self):
        """The FABsum selling point: leading error term ~ b*u, not n*u."""
        rng = np.random.default_rng(2)
        b = 128
        for n in (10_000, 100_000):
            x = rng.uniform(0.0, 1.0, n)
            exact = exact_sum_fraction(x)
            err = abs(float(Fraction(FABSum(block=b).sum_array(x)) - exact))
            # bound: (b + O(1)) * u * sum|x| (generous constant)
            assert err <= 4 * b * UNIT_ROUNDOFF * float(np.sum(np.abs(x)))

    def test_scalar_adds_and_flush(self):
        acc = BlockedAccumulator(block=4)
        for v in [0.1] * 10:
            acc.add(v)
        assert acc.result() == pytest.approx(1.0, rel=1e-14)

    def test_mixed_scalar_and_array(self):
        acc = BlockedAccumulator(block=8)
        acc.add(1.0)
        acc.add_array(np.full(20, 2.0))
        acc.add(3.0)
        assert acc.result() == 44.0

    def test_merge(self):
        a = BlockedAccumulator(block=8)
        a.add_array(np.full(10, 0.5))
        b = BlockedAccumulator(block=8)
        b.add_array(np.full(6, 0.25))
        a.merge(b)
        assert a.result() == 6.5

    def test_empty_and_validation(self):
        assert FABSum().sum_array(np.array([])) == 0.0
        with pytest.raises(ValueError):
            FABSum(block=1)
        with pytest.raises(ValueError):
            BlockedAccumulator(block=0)
