"""Exponent/ulp utilities."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fp.properties import (
    MANTISSA_BITS,
    UNIT_ROUNDOFF,
    exponent,
    exponents,
    is_power_of_two,
    next_down,
    next_up,
    ulp,
)


class TestExponent:
    @pytest.mark.parametrize(
        "x,e",
        [
            (1.0, 0),
            (1.999, 0),
            (2.0, 1),
            (0.5, -1),
            (1e9, 29),
            (-1e9, 29),
            (2.0**-1022, -1022),
            (5e-324, -1074),  # smallest subnormal
            (1.7976931348623157e308, 1023),  # largest double
        ],
    )
    def test_known_values(self, x, e):
        assert exponent(x) == e

    @given(st.floats(allow_nan=False, allow_infinity=False).filter(lambda x: x != 0.0))
    def test_definition(self, x):
        e = exponent(x)
        assert 2.0**e <= abs(x) or e == -1074  # subnormal rounding edge
        if e < 1023:
            assert abs(x) < 2.0 ** (e + 1)

    @pytest.mark.parametrize("bad", [0.0, math.nan, math.inf, -math.inf])
    def test_rejects_non_representable(self, bad):
        with pytest.raises(ValueError):
            exponent(bad)

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(1e-300, 1e300, 200) * rng.choice([-1.0, 1.0], 200)
        es = exponents(x)
        for xi, ei in zip(x.tolist(), es.tolist()):
            assert exponent(xi) == ei

    def test_vectorized_rejects_zero_and_nonfinite(self):
        with pytest.raises(ValueError):
            exponents(np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            exponents(np.array([1.0, math.inf]))


class TestConstants:
    def test_unit_roundoff(self):
        assert UNIT_ROUNDOFF == 2.0**-53
        # u is the largest x with fl(1 + x) == 1 (round-to-nearest-even)
        assert 1.0 + UNIT_ROUNDOFF == 1.0
        assert 1.0 + 2 * UNIT_ROUNDOFF > 1.0

    def test_mantissa_bits(self):
        assert MANTISSA_BITS == 53


class TestUlpNeighbors:
    def test_ulp_of_one(self):
        assert ulp(1.0) == 2.0**-52

    def test_next_up_down_inverse(self):
        for x in [1.0, -1.0, 1e17, 5e-324, 0.0]:
            assert next_down(next_up(x)) == x

    def test_power_of_two_detection(self):
        assert is_power_of_two(1.0)
        assert is_power_of_two(-8.0)
        assert is_power_of_two(2.0**-1060)
        assert not is_power_of_two(3.0)
        assert not is_power_of_two(0.0)
        assert not is_power_of_two(math.inf)
