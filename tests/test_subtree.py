"""Hierarchical (subtree-level) selection — the paper's future work."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import zero_sum_set
from repro.selection import CostModel, HierarchicalReducer
from repro.exact import exact_sum


@pytest.fixture
def mixed_chunks():
    """Heterogeneous ranks: most benign, two hostile (cancelling) chunks."""
    rng = np.random.default_rng(0)
    chunks = [np.abs(rng.uniform(1.0, 2.0, 4096)) for _ in range(6)]
    chunks.append(zero_sum_set(4096, dr=32, seed=1))
    chunks.append(zero_sum_set(4096, dr=24, seed=2))
    return chunks


class TestPlanning:
    def test_per_rank_heterogeneous_choices(self, mixed_chunks):
        red = HierarchicalReducer(threshold=1e-12)
        plan = red.plan(mixed_chunks)
        codes = plan.local_codes
        assert len(codes) == len(mixed_chunks)
        # benign ranks stay cheap, hostile ranks escalate
        assert all(c in ("ST", "K") for c in codes[:6])
        assert all(c == "PR" for c in codes[6:])

    def test_plan_reports_counts_and_cost(self, mixed_chunks):
        red = HierarchicalReducer(threshold=1e-12)
        plan = red.plan(mixed_chunks)
        counts = plan.code_counts
        assert sum(counts.values()) == len(mixed_chunks)
        cm = CostModel()
        sizes = [c.size for c in mixed_chunks]
        hetero = plan.estimated_cost(cm, sizes)
        all_pr = sum(cm.cost("PR", n) for n in sizes)
        assert hetero < all_pr  # the point of subtree selection

    def test_empty_chunks_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalReducer().plan([])

    def test_nondeterministic_combine_rejected(self):
        with pytest.raises(ValueError, match="deterministic"):
            HierarchicalReducer(combine="ST")
        with pytest.raises(ValueError):
            HierarchicalReducer(threshold=-1)


class TestReduction:
    def test_value_accuracy(self, mixed_chunks):
        red = HierarchicalReducer(threshold=1e-12)
        result = red.reduce(mixed_chunks)
        exact = exact_sum(np.concatenate(mixed_chunks))
        assert result.value == pytest.approx(exact, rel=1e-11)

    def test_reproducible_under_rank_reordering(self, mixed_chunks):
        """Cross-rank combine is deterministic: permuting the rank order of
        the partials cannot change the result."""
        red = HierarchicalReducer(threshold=1e-12)
        v1 = red.reduce(mixed_chunks).value
        v2 = red.reduce(mixed_chunks[::-1]).value
        assert v1 == v2

    def test_cached_plan_reuse(self, mixed_chunks):
        red = HierarchicalReducer(threshold=1e-12)
        plan = red.plan(mixed_chunks)
        r1 = red.reduce(mixed_chunks, plan=plan)
        r2 = red.reduce(mixed_chunks, plan=plan)
        assert r1.value == r2.value
        assert r1.plan is plan

    def test_plan_chunk_mismatch(self, mixed_chunks):
        red = HierarchicalReducer()
        plan = red.plan(mixed_chunks)
        with pytest.raises(ValueError, match="does not match"):
            red.reduce(mixed_chunks[:-1], plan=plan)

    def test_tight_budget_escalates_everything(self, mixed_chunks):
        red = HierarchicalReducer(threshold=0.0)
        plan = red.plan(mixed_chunks)
        assert set(plan.local_codes) == {"PR"}

    def test_exact_combine_variant(self, mixed_chunks):
        red = HierarchicalReducer(combine="EX", threshold=1e-12)
        result = red.reduce(mixed_chunks)
        assert result.plan.combine_code == "EX"
        exact = exact_sum(np.concatenate(mixed_chunks))
        assert result.value == pytest.approx(exact, rel=1e-11)
