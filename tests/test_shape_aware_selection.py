"""Tree-shape awareness in the variability model and the adaptive reducer.

The paper's Sec. V.D asks for tools that "profile parameters of interest
(e.g., n, k, dr, and tree shape)"; these tests pin the shape parameter's
behaviour: serial/unknown shapes escalate predictions (and hence selections)
for the shape-sensitive algorithms, and the escalated prediction actually
covers the measured serial-ensemble variability.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.generators import generate_sum_set
from repro.metrics import error_stats, profile_set
from repro.mpi import SimComm
from repro.selection import AdaptiveReducer, AnalyticPolicy, VariabilityModel
from repro.summation import get_algorithm
from repro.trees import evaluate_ensemble


class TestShapeMultiplier:
    def test_serial_escalates_st_prediction(self):
        m = VariabilityModel()
        p = profile_set(generate_sum_set(2048, 1e9, 16, seed=0).values)
        bal = m.predict_std("ST", p, shape="balanced")
        ser = m.predict_std("ST", p, shape="serial")
        assert ser == pytest.approx(bal * m.shape_factor_serial)

    def test_unknown_treated_as_serial(self):
        m = VariabilityModel()
        p = profile_set(generate_sum_set(2048, 1e9, 16, seed=1).values)
        assert m.predict_std("ST", p, shape="unknown") == m.predict_std(
            "ST", p, shape="serial"
        )

    def test_deterministic_algorithms_shape_free(self):
        m = VariabilityModel()
        p = profile_set(generate_sum_set(2048, 1e9, 16, seed=2).values)
        for code in ("PR", "AS"):
            assert m.predict_std(code, p, shape="serial") == 0.0

    def test_bad_shape_rejected(self):
        m = VariabilityModel()
        p = profile_set(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            m.predict_std("ST", p, shape="spiral")

    def test_serial_prediction_covers_measured_serial_variability(self):
        """The whole point of the multiplier: the serial-shape prediction
        must not underestimate measured serial ensembles (within a decade)."""
        m = VariabilityModel()
        for k in (1e6, 1e12):
            data = generate_sum_set(2048, k, 16, seed=3).values
            vals = evaluate_ensemble(data, "serial", get_algorithm("ST"), 60, seed=4)
            measured = error_stats(vals, data).rel_std
            predicted = m.predict_std("ST", profile_set(data), shape="serial")
            assert predicted >= measured / 10.0


class TestPolicyShapeHint:
    def test_selection_escalates_for_serial_shape(self):
        """There exists a threshold where the balanced hint keeps ST but the
        serial hint escalates — the shape parameter changes decisions."""
        policy = AnalyticPolicy()
        p = profile_set(generate_sum_set(4096, 1e6, 16, seed=5).values)
        bal_pred = policy.model.predict_std("ST", p, shape="balanced")
        ser_pred = policy.model.predict_std("ST", p, shape="serial")
        t = math.sqrt(bal_pred * ser_pred)  # between the two
        assert policy.select(p, t, shape="balanced").code == "ST"
        assert policy.select(p, t, shape="serial").code != "ST"

    def test_adaptive_reducer_uses_hint_for_nondeterministic_runs(self):
        comm = SimComm(8, seed=6)
        data = generate_sum_set(4096, 1e6, 16, seed=7).values
        chunks = comm.scatter_array(data)
        policy = AnalyticPolicy()
        p = profile_set(data)
        bal_pred = policy.model.predict_std("ST", p, shape="balanced")
        ser_pred = policy.model.predict_std("ST", p, shape="serial")
        t = math.sqrt(bal_pred * ser_pred)
        red = AdaptiveReducer(comm, policy=policy, threshold=t)
        fixed = red.reduce(chunks)  # fixed balanced-ish tree: cheap is fine
        nondet = red.reduce(chunks, nondeterministic=True)
        assert fixed.decision.code == "ST"
        assert nondet.decision.code != "ST"
