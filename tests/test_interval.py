"""Interval arithmetic substrate (Sec. III.B)."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import exact_sum_fraction
from repro.interval import Interval, add_down, add_up, sum_interval_array
from repro.interval.summation import IntervalAccumulator, IntervalSum

moderate = st.floats(allow_nan=False, allow_infinity=False, min_value=-1e100, max_value=1e100)


class TestDirectedRounding:
    @given(moderate, moderate)
    def test_bracketing(self, a, b):
        exact = Fraction(a) + Fraction(b)
        assert Fraction(add_down(a, b)) <= exact <= Fraction(add_up(a, b))

    @given(moderate, moderate)
    def test_tightness(self, a, b):
        """The bounds are adjacent doubles (or equal when the add is exact)."""
        lo, hi = add_down(a, b), add_up(a, b)
        assert hi == lo or hi == math.nextafter(lo, math.inf)

    def test_exact_add_degenerate(self):
        assert add_down(1.0, 2.0) == add_up(1.0, 2.0) == 3.0


class TestInterval:
    def test_point_and_validation(self):
        i = Interval.point(2.5)
        assert i.width == 0.0 and i.midpoint == 2.5
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)
        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)

    def test_add_contains_exact(self):
        a = Interval.point(0.1)
        b = Interval.point(0.2)
        c = a + b
        assert c.contains(Fraction(0.1) + Fraction(0.2))
        assert c.width > 0.0  # 0.1 + 0.2 is inexact

    def test_neg_sub(self):
        i = Interval(1.0, 2.0)
        assert (-i) == Interval(-2.0, -1.0)
        d = i - Interval(0.5, 0.75)
        assert d.lo <= 0.25 and d.hi >= 1.5

    def test_scalar_add(self):
        i = Interval(1.0, 2.0) + 1.0
        assert i.lo == 2.0 and i.hi == 3.0

    def test_digits(self):
        assert Interval.point(1.0).digits() == pytest.approx(15.95)
        wide = Interval(1.0, 1.1)
        assert 0.5 < wide.digits() < 2.0
        assert Interval(-1.0, 1.0).digits() < 0.5


class TestIntervalSum:
    @given(st.lists(moderate, min_size=0, max_size=80))
    @settings(max_examples=50)
    def test_enclosure_contains_exact_sum(self, xs):
        x = np.array(xs, dtype=np.float64)
        enc = sum_interval_array(x)
        assert enc.contains(exact_sum_fraction(x))

    def test_enclosure_contains_every_tree_value(self):
        """Any floating-point reduction of the data lands inside (or within
        one ulp of) the enclosure of the exact sum."""
        from repro.summation import get_algorithm
        from repro.trees import evaluate_ensemble

        rng = np.random.default_rng(0)
        x = rng.uniform(-1e3, 1e3, 500)
        enc = sum_interval_array(x)
        vals = evaluate_ensemble(x, "balanced", get_algorithm("ST"), 30, seed=1)
        pad = math.ulp(max(abs(enc.lo), abs(enc.hi))) * 500
        assert vals.min() >= enc.lo - pad and vals.max() <= enc.hi + pad

    def test_guaranteed_digits_collapse_under_cancellation(self):
        """Sec. III.B's dismissal, measured: interval enclosures are 'not
        suitable for applications needing many digits of accuracy' — the
        width stays ~u * mass, so once the sum cancels, the enclosure
        certifies almost no digits of the result."""
        from repro.generators import zero_sum_set

        benign = np.abs(np.random.default_rng(2).uniform(1, 2, 1000))
        hostile = zero_sum_set(1000, dr=32, seed=3)
        assert sum_interval_array(benign).digits() > 10.0
        assert sum_interval_array(hostile).digits() < 2.0

    def test_accumulator_and_merge(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(-1, 1, 300)
        a = IntervalAccumulator()
        a.add_array(x[:150])
        b = IntervalAccumulator()
        b.add_array(x[150:])
        a.merge(b)
        assert a.interval.contains(exact_sum_fraction(x))
        assert a.result() == a.interval.midpoint

    def test_scalar_adds(self):
        acc = IntervalAccumulator()
        for v in (0.1, 0.2, 0.3):
            acc.add(v)
        assert acc.interval.contains(Fraction(0.1) + Fraction(0.2) + Fraction(0.3))

    def test_algorithm_interface(self):
        alg = IntervalSum()
        x = np.array([1.0, 2.0, 3.0])
        assert alg.sum_array(x) == 6.0
        assert alg.enclosure(x).width == 0.0
        assert alg.code == "IV"
