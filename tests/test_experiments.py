"""Experiment harness: every figure runs at a tiny scale and its shape
checks — the paper's qualitative claims — pass."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import SCALES, Scale, resolve_scale
from repro.experiments.runner import EXPERIMENTS, EXTENSIONS, main, run_experiment

#: a minimal scale so the whole harness runs inside the unit-test budget
TINY = Scale(
    name="tiny",
    fig2_n_values=400,
    fig2_n_orders=120,
    fig3_n_values=200,
    fig3_n_orders=25,
    fig4_n_terms=240_000,
    fig4_n_ranks=2,
    # min-of-N cost estimate: the K/CP margin is only a few percent, so a
    # loaded CI box needs more repeats for the ranking check to be stable
    fig4_repeats=7,
    fig6_n=512,
    fig6_n_trees=30,
    fig7_small_n=512,
    fig7_large_n=8192,
    fig7_n_trees=25,
    grid_n=1024,
    grid_n_trees=60,
    grid_k_decades=(0, 5, 10, 15),
    grid_dr_values=(0, 16, 32),
    grid_n_values=(256, 1024, 4096),
)


class TestConfig:
    def test_scales_registered(self):
        assert {"ci", "large", "paper"} <= set(SCALES)
        assert SCALES["paper"].fig7_large_n == 1_048_576
        assert SCALES["paper"].grid_n_trees == 1000
        assert SCALES["ci"].grid_n < SCALES["large"].grid_n < SCALES["paper"].grid_n

    def test_resolve_by_name_and_env(self, monkeypatch):
        assert resolve_scale("paper").name == "paper"
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert resolve_scale().name == "paper"
        monkeypatch.delenv("REPRO_SCALE")
        assert resolve_scale().name == "ci"
        with pytest.raises(KeyError):
            resolve_scale("galactic")

    def test_registry_lists_all_figures(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "fig6",
            "fig7",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


@pytest.mark.parametrize("exp_id", EXPERIMENTS + EXTENSIONS)
def test_experiment_checks_pass(exp_id):
    """Run each figure at the tiny scale; all shape checks must pass.

    fig4 is timing-based and can wobble under CI load, so its cost-ranking
    check gets one retry.
    """
    from repro.experiments import runner

    result = runner._registry()[exp_id](TINY)
    if exp_id == "fig4" and not result.all_checks_pass:
        result = runner._registry()[exp_id](TINY)
    assert result.all_checks_pass, result.render()
    assert result.rows
    assert result.text
    assert result.experiment_id in ("fig5", exp_id) or exp_id == "fig4"


class TestRunnerCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out

    def test_run_with_json_out(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(SCALES, "tiny", TINY)  # type: ignore[arg-type]
        code = main(["run", "table1", "--scale", "tiny", "--out", str(tmp_path)])
        assert code == 0
        payload = json.loads((tmp_path / "table1_tiny.json").read_text())
        assert payload["experiment"] == "table1"
        assert all(payload["checks"].values())
        out = capsys.readouterr().out
        assert "PASS" in out
