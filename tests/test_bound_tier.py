"""The bound-driven selection tier: agreement, bitwise identity, precision.

The tier's contract (Sec. V.D's runtime, minus the profiling tax): enabling
``bound_confidence`` must change *selection cost only* — every decision code
and every reduced value stays bitwise-identical to the profiling-only
pipeline, because the tier resolves an item only when it can prove the
profiling policy would choose the same algorithm.  These tests pin that
agreement across data regimes, dtypes, thresholds, worker counts and the
decision cache, plus the fp32/fp16 precision axis (no silent upcast inside
the decision) and the new observability counters.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.fp.properties import UNIT_ROUNDOFF, unit_roundoff
from repro.mpi.comm import SimComm
from repro.obs import get_registry
from repro.selection import (
    AdaptiveReducer,
    AnalyticPolicy,
    BoundStats,
    BoundTier,
    bound_stats_item,
    bound_stats_stream,
    item_unit_roundoff,
)

N_RANKS = 8
CONFIDENCE = 1 - 1e-6


def _chunks(kind: str, seed: int, width: int = 64, dtype=np.float64):
    rng = np.random.default_rng(seed)
    if kind == "easy":
        data = [rng.random(width) for _ in range(N_RANKS)]
    elif kind == "mixed":
        data = [rng.standard_normal(width) for _ in range(N_RANKS)]
    elif kind == "cancel":
        base = [rng.random(width) + 1.0 for _ in range(N_RANKS // 2)]
        data = base + [-b for b in base]
    elif kind == "zero":
        base = [rng.random(width) for _ in range(N_RANKS // 2)]
        data = base + [-b for b in base]
        data = [d.copy() for d in data]
    elif kind == "denormal":
        tiny = float(np.finfo(np.float64).tiny)
        data = [rng.random(width) * 2.0 * tiny for _ in range(N_RANKS)]
    elif kind == "wide":
        data = [
            rng.uniform(-1, 1, width) * 10.0 ** rng.integers(-9, 10, size=width)
            for _ in range(N_RANKS)
        ]
    else:  # pragma: no cover - test bug
        raise ValueError(kind)
    return [np.asarray(d, dtype=dtype) for d in data]


def _stream(kinds, seeds, dtype=np.float64):
    return [_chunks(k, s, dtype=dtype) for k in kinds for s in seeds]


KINDS = ("easy", "mixed", "cancel", "zero", "denormal", "wide")


class TestDecisionAgreement:
    """Tiered and untiered pipelines always pick the same algorithm."""

    @pytest.mark.parametrize("threshold", [1e-7, 1e-11, 1e-13, 1e-15, 0.0])
    def test_reduce_many_agreement_sweep(self, threshold):
        batches = _stream(KINDS, range(4))
        comm = SimComm(N_RANKS)
        plain = AdaptiveReducer(comm, threshold=threshold)
        tiered = AdaptiveReducer(
            comm, threshold=threshold, bound_confidence=CONFIDENCE
        )
        rp = plain.reduce_many(batches, workers=1)
        rt = tiered.reduce_many(batches, workers=1)
        assert [r.decision.code for r in rp] == [r.decision.code for r in rt]
        for a, b in zip(rp, rt):
            assert np.float64(a.value).tobytes() == np.float64(b.value).tobytes()

    @pytest.mark.parametrize("kind", KINDS)
    def test_solo_reduce_agreement(self, kind):
        comm = SimComm(N_RANKS)
        plain = AdaptiveReducer(comm, threshold=1e-13)
        tiered = AdaptiveReducer(comm, threshold=1e-13, bound_confidence=CONFIDENCE)
        for seed in range(3):
            chunks = _chunks(kind, seed)
            a = plain.reduce(chunks)
            b = tiered.reduce(chunks)
            assert a.decision.code == b.decision.code
            assert np.float64(a.value).tobytes() == np.float64(b.value).tobytes()

    def test_deterministic_confidence_agreement(self):
        """confidence=1.0 (deterministic bounds only) also never disagrees."""
        batches = _stream(KINDS, range(2))
        comm = SimComm(N_RANKS)
        plain = AdaptiveReducer(comm, threshold=1e-9)
        tiered = AdaptiveReducer(comm, threshold=1e-9, bound_confidence=1.0)
        rp = plain.reduce_many(batches, workers=1)
        rt = tiered.reduce_many(batches, workers=1)
        assert [r.decision.code for r in rp] == [r.decision.code for r in rt]

    def test_fast_path_actually_engages(self):
        """Well-conditioned serving data resolves via the bound tier."""
        batches = _stream(("easy",), range(8))
        tiered = AdaptiveReducer(
            SimComm(N_RANKS), threshold=1e-13, bound_confidence=CONFIDENCE
        )
        results = tiered.reduce_many(batches, workers=1)
        assert all(r.decision.tier == "bound" for r in results)
        # and the tier bypasses the decision cache entirely
        assert tiered.decision_cache_info()["misses"] == 0

    def test_inconclusive_items_fall_back(self):
        """Exact-zero sums are beyond cheap-statistics certification."""
        batches = _stream(("zero",), range(4))
        tiered = AdaptiveReducer(
            SimComm(N_RANKS), threshold=1e-13, bound_confidence=CONFIDENCE
        )
        results = tiered.reduce_many(batches, workers=1)
        assert all(r.decision.tier == "profile" for r in results)
        assert tiered.decision_cache_info()["misses"] >= 1

    def test_default_is_tier_off(self):
        reducer = AdaptiveReducer(SimComm(N_RANKS))
        assert reducer.bound_confidence is None
        results = reducer.reduce_many(_stream(("easy",), range(2)), workers=1)
        assert all(r.decision.tier == "profile" for r in results)

    def test_nondeterministic_route_skips_tier(self):
        tiered = AdaptiveReducer(
            SimComm(N_RANKS), threshold=1e-7, bound_confidence=CONFIDENCE
        )
        res = tiered.reduce(_chunks("easy", 0), nondeterministic=True)
        assert res.decision.tier == "profile"

    def test_confidence_validation(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                AdaptiveReducer(SimComm(2), bound_confidence=bad)
        with pytest.raises(ValueError):
            BoundTier(confidence=2.0)


class TestPrecisionAxis:
    """fp32/fp16 round-trip with precision-aware selection decisions."""

    def test_item_unit_roundoff(self):
        a64 = [np.zeros(4), np.ones(4)]
        a32 = [np.zeros(4, np.float32), np.ones(4, np.float32)]
        a16 = [np.zeros(4, np.float16), np.ones(4, np.float16)]
        assert item_unit_roundoff(a64) == 2.0**-53
        assert item_unit_roundoff(a32) == 2.0**-24
        assert item_unit_roundoff(a16) == 2.0**-11
        # promotion: a mixed fp16/fp64 item decides at binary64
        assert item_unit_roundoff([a16[0], a64[0]]) == 2.0**-53
        # plain python lists have no dtype: binary64
        assert item_unit_roundoff([[1.0, 2.0]]) == 2.0**-53

    @pytest.mark.parametrize("dtype", [np.float32, np.float16])
    def test_low_precision_round_trip(self, dtype):
        u = unit_roundoff(dtype)
        batches = _stream(("easy", "mixed"), range(3), dtype=dtype)
        comm = SimComm(N_RANKS)
        plain = AdaptiveReducer(comm, threshold=1e-13)
        tiered = AdaptiveReducer(comm, threshold=1e-13, bound_confidence=CONFIDENCE)
        rp = plain.reduce_many(batches, workers=1)
        rt = tiered.reduce_many(batches, workers=1)
        for a, b in zip(rp, rt):
            # the decision was made at the input's own roundoff, both paths
            assert a.decision.u == u
            assert b.decision.u == u
            assert a.decision.code == b.decision.code
            assert np.float64(a.value).tobytes() == np.float64(b.value).tobytes()
        # at serving thresholds low-precision variability forces the exact
        # algorithm — the decision visibly differs from the binary64 one
        r64 = plain.reduce_many(_stream(("easy",), range(1)), workers=1)
        assert r64[0].decision.code == "ST"
        assert rt[0].decision.code == "PR"

    def test_solo_reduce_low_precision(self):
        tiered = AdaptiveReducer(
            SimComm(N_RANKS), threshold=1e-13, bound_confidence=CONFIDENCE
        )
        res = tiered.reduce(_chunks("easy", 0, dtype=np.float16))  # repro: allow[FP005] -- exercises the tier's fp16 precision axis
        assert res.decision.u == 2.0**-11
        assert math.isfinite(res.value)

    def test_cache_key_no_dtype_aliasing(self):
        """Regression (cache-key extension): an fp16 stream whose profile
        signature (n, k-decade, dr, threshold) matches a binary64 stream's
        must not reuse its cached decision."""
        reducer = AdaptiveReducer(SimComm(2), threshold=1e-13)
        rng = np.random.default_rng(5)
        base = rng.random(32)
        b64 = [[base.copy(), base.copy()]]
        b16 = [[base.astype(np.float16), base.astype(np.float16)]]  # repro: allow[FP005] -- the aliasing regression needs a genuine fp16 stream
        r64 = reducer.reduce_many(b64, workers=1)
        info_before = reducer.decision_cache_info()
        r16 = reducer.reduce_many(b16, workers=1)
        info_after = reducer.decision_cache_info()
        # second stream was a cache miss, not an aliased hit
        assert info_after["misses"] == info_before["misses"] + 1
        assert r64[0].decision.u == 2.0**-53
        assert r16[0].decision.u == 2.0**-11
        assert r64[0].decision.code != r16[0].decision.code

    def test_cache_key_no_confidence_aliasing(self):
        """Reconfiguring the tier changes the key's confidence axis."""
        comm = SimComm(2)
        sketch_batches = [[np.ones(16), np.ones(16)]]
        r1 = AdaptiveReducer(comm, threshold=1e-13)
        r2 = AdaptiveReducer(comm, threshold=1e-13, bound_confidence=0.5)
        k1 = r1._decision_key(
            bound_stats_item(sketch_batches[0], UNIT_ROUNDOFF).as_stream_profile(),
            1e-13,
        )
        k2 = r2._decision_key(
            bound_stats_item(sketch_batches[0], UNIT_ROUNDOFF).as_stream_profile(),
            1e-13,
        )
        assert k1 != k2


class TestStatisticsPass:
    def test_stream_matches_item_loop_bitwise(self):
        batches = _stream(KINDS, range(3))
        us = [item_unit_roundoff(c) for c in batches]
        stream = bound_stats_stream(batches, us)
        for st, chunks, u in zip(stream, batches, us):
            item = bound_stats_item(chunks, u)
            assert st == item  # dataclass equality is field-exact

    def test_ragged_stream_falls_back_to_item_loop(self):
        rng = np.random.default_rng(3)
        batches = [
            [rng.random(int(rng.integers(4, 40))) for _ in range(3)]
            for _ in range(6)
        ]
        us = [UNIT_ROUNDOFF] * len(batches)
        stream = bound_stats_stream(batches, us)
        for st, chunks in zip(stream, batches):
            assert st == bound_stats_item(chunks, UNIT_ROUNDOFF)

    def test_stats_round_trip_through_stream_profile(self):
        stats = bound_stats_item(_chunks("wide", 1), 2.0**-24)
        again = BoundStats.from_stream_profile(stats.as_stream_profile(), 2.0**-24)
        assert again == stats

    def test_empty_and_zero_items(self):
        zero = bound_stats_item([np.zeros(8), np.zeros(8)], UNIT_ROUNDOFF)
        assert zero.abs_sum == 0.0 and zero.n == 16
        assert zero.dynamic_range_estimate() == 0
        empty = bound_stats_item([], UNIT_ROUNDOFF)
        assert empty.n == 0

    def test_subset_lanes_match_full_stream(self):
        """decide_stream lanes are independent: a subset call returns the
        same decisions the full-stream call produced for those items."""
        batches = _stream(KINDS, range(2))
        us = [item_unit_roundoff(c) for c in batches]
        stats = bound_stats_stream(batches, us)
        tier = BoundTier(confidence=CONFIDENCE)
        policy = AnalyticPolicy()
        full = tier.decide_stream(stats, 1e-13, policy)
        subset_idx = [0, 3, 5, len(stats) - 1]
        subset = tier.decide_stream([stats[i] for i in subset_idx], 1e-13, policy)
        for j, i in enumerate(subset_idx):
            if full[i] is None:
                assert subset[j] is None
            else:
                assert subset[j] is not None
                assert subset[j].code == full[i].code
                assert subset[j].predicted_std == full[i].predicted_std


class TestParallelPath:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_bitwise_identity(self, workers):
        batches = _stream(KINDS, range(3))
        comm = SimComm(N_RANKS)
        tiered = AdaptiveReducer(comm, threshold=1e-13, bound_confidence=CONFIDENCE)
        serial = tiered.reduce_many(batches, workers=1)
        parallel = tiered.reduce_many(batches, workers=workers)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert np.float64(a.value).tobytes() == np.float64(b.value).tobytes()
            assert a.decision.code == b.decision.code
            assert a.decision.tier == b.decision.tier
            assert a.decision.u == b.decision.u

    def test_parallel_low_precision_round_trip(self):
        batches = _stream(("easy", "mixed"), range(4), dtype=np.float32)  # repro: allow[FP005] -- exercises the parallel fp32 precision axis
        comm = SimComm(N_RANKS)
        tiered = AdaptiveReducer(comm, threshold=1e-13, bound_confidence=CONFIDENCE)
        serial = tiered.reduce_many(batches, workers=1)
        parallel = tiered.reduce_many(batches, workers=2)
        for a, b in zip(serial, parallel):
            assert b.decision.u == 2.0**-24
            assert a.decision.code == b.decision.code
            assert np.float64(a.value).tobytes() == np.float64(b.value).tobytes()


class TestObservability:
    def setup_method(self):
        reg = get_registry()
        reg.reset()
        reg.enable()

    def teardown_method(self):
        reg = get_registry()
        reg.reset()
        reg.disable()

    @staticmethod
    def _counter_total(snapshot, name):
        return sum(
            s["value"] for s in snapshot.get("counters", {}).get(name, [])
        )

    def test_fast_path_and_fallback_counters_reconcile(self):
        batches = _stream(("easy", "zero"), range(3))
        tiered = AdaptiveReducer(
            SimComm(N_RANKS), threshold=1e-13, bound_confidence=CONFIDENCE
        )
        results = tiered.reduce_many(batches, workers=1)
        snap = get_registry().snapshot()
        fast = self._counter_total(snap, "repro_select_bound_fast_path_total")
        fallback = self._counter_total(snap, "repro_select_profile_fallback_total")
        assert fast + fallback == len(batches)
        assert fast == sum(1 for r in results if r.decision.tier == "bound")
        assert fast > 0 and fallback > 0
        assert "repro_selector_bound_seconds" in snap.get("histograms", {})

    def test_solo_reduce_counters(self):
        tiered = AdaptiveReducer(
            SimComm(N_RANKS), threshold=1e-13, bound_confidence=CONFIDENCE
        )
        tiered.reduce(_chunks("easy", 0))
        snap = get_registry().snapshot()
        assert self._counter_total(snap, "repro_select_bound_fast_path_total") == 1

    def test_tier_off_emits_no_bound_metrics(self):
        plain = AdaptiveReducer(SimComm(N_RANKS), threshold=1e-13)
        plain.reduce_many(_stream(("easy",), range(2)), workers=1)
        snap = get_registry().snapshot()
        assert self._counter_total(snap, "repro_select_bound_fast_path_total") == 0
