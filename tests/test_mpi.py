"""Simulated-MPI substrate: communicator, topology, nondeterminism, faults."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import zero_sum_series
from repro.mpi import (
    FaultModel,
    MachineTopology,
    SimComm,
    arrival_order_tree,
    binomial_tree,
    make_reduction_op,
    run_campaign,
    sample_arrival_times,
    topology_aware_tree,
    tree_cost,
)
from repro.summation import get_algorithm
from repro.trees import balanced, serial


@pytest.fixture
def topo():
    return MachineTopology(nodes=3, sockets_per_node=2, cores_per_socket=4)


class TestTopology:
    def test_rank_count_and_coords(self, topo):
        assert topo.n_ranks == 24
        assert topo.coords(0) == (0, 0, 0)
        assert topo.coords(23) == (2, 1, 3)
        with pytest.raises(ValueError):
            topo.coords(24)

    def test_latency_tiers(self, topo):
        assert topo.link_latency(0, 1) == topo.latency_socket
        assert topo.link_latency(0, 4) == topo.latency_node
        assert topo.link_latency(0, 8) == topo.latency_network

    def test_binomial_tree_steps(self):
        steps = binomial_tree(8)
        assert len(steps) == 7
        assert steps[0] == (0, 1)
        survivors = {0}
        for a, b in steps:
            assert a in survivors or b not in survivors
            survivors.add(a)
            survivors.discard(b)
        assert survivors == {0}

    def test_topology_aware_tree_valid(self, topo):
        t = topology_aware_tree(topo)
        t.validate()
        assert t.n_leaves == 24

    def test_topology_tree_beats_oblivious_shapes(self, topo):
        t_topo = tree_cost(topology_aware_tree(topo), topo)
        # the oblivious comparator reduces in an order unrelated to
        # placement (Balaji & Kimpe's fixed-order tree): same balanced
        # shape, ranks scattered
        scattered = np.random.default_rng(0).permutation(24)
        t_bal_oblivious = tree_cost(balanced(24), topo, leaf_rank=scattered)
        t_ser = tree_cost(serial(24), topo)
        assert t_topo < t_bal_oblivious < t_ser

    def test_advantage_grows_with_scale(self):
        """Balaji & Kimpe: the topology advantage increases with core count."""
        gains = []
        for nodes in (2, 8):
            t = MachineTopology(nodes=nodes, sockets_per_node=2, cores_per_socket=8)
            gains.append(
                tree_cost(balanced(t.n_ranks), t) / tree_cost(topology_aware_tree(t), t)
            )
        assert gains[1] > gains[0]

    def test_tree_cost_leaf_rank_mapping(self, topo):
        t = balanced(24)
        cost_identity = tree_cost(t, topo)
        # a permutation that scatters neighbours across nodes costs more
        perm = np.roll(np.arange(24), 12)
        cost_scattered = tree_cost(t, topo, leaf_rank=perm)
        assert cost_scattered >= cost_identity * 0.5  # sanity: same order of magnitude

    def test_invalid_topology(self):
        with pytest.raises(ValueError):
            MachineTopology(nodes=0)


class TestSimCommBasics:
    def test_scatter_covers_and_balances(self):
        comm = SimComm(5)
        chunks = comm.scatter_array(np.arange(17, dtype=np.float64))
        assert sum(c.size for c in chunks) == 17
        assert max(c.size for c in chunks) - min(c.size for c in chunks) <= 1

    def test_reduce_matches_direct_sum(self):
        comm = SimComm(8)
        data = np.random.default_rng(0).uniform(-1, 1, 1000)
        chunks = comm.scatter_array(data)
        op = make_reduction_op(get_algorithm("CP"))
        r = comm.reduce(chunks, op, tree="balanced")
        assert r.value == pytest.approx(float(np.sum(data)), abs=1e-10)
        assert r.tree.n_leaves == 8

    def test_allreduce_broadcast(self):
        comm = SimComm(4)
        chunks = comm.scatter_array(np.ones(40))
        vals = comm.allreduce(chunks, make_reduction_op(get_algorithm("ST")))
        assert vals == [40.0] * 4

    def test_max_allreduce(self):
        comm = SimComm(3)
        assert comm.max_allreduce([1.0, 5.0, 2.0]) == 5.0

    def test_pr_pre_pass_automatic(self):
        comm = SimComm(4)
        data = zero_sum_series(4000, seed=1)
        chunks = comm.scatter_array(data)
        r = comm.reduce(chunks, make_reduction_op(get_algorithm("PR")))
        assert r.value == 0.0

    def test_size_checks(self):
        comm = SimComm(4)
        with pytest.raises(ValueError, match="one entry per rank"):
            comm.reduce([np.ones(3)], make_reduction_op(get_algorithm("ST")))

    def test_tree_specs(self, topo):
        comm = SimComm(topology=topo)
        chunks = comm.scatter_array(np.ones(48))
        op = make_reduction_op(get_algorithm("ST"))
        for spec in ("balanced", "serial", "topology", serial(24)):
            assert comm.reduce(chunks, op, tree=spec).value == 48.0
        with pytest.raises(ValueError):
            comm.reduce(chunks, op, tree="mystery")
        with pytest.raises(ValueError):
            comm.reduce(chunks, op, tree=serial(7))


class TestNondeterminism:
    def test_arrival_tree_valid(self):
        sched = sample_arrival_times(33, jitter=0.5, seed=2)
        run = arrival_order_tree(sched)
        run.tree.validate()
        assert run.completion_time > 0.0

    def test_zero_jitter_deterministic_schedule(self):
        a = sample_arrival_times(16, jitter=0.0, seed=3)
        b = sample_arrival_times(16, jitter=0.0, seed=4)
        assert np.array_equal(a.ready, b.ready)

    def test_nondet_reduce_varies_for_st(self):
        comm = SimComm(32, seed=5)
        data = zero_sum_series(32_000, seed=6)
        chunks = comm.scatter_array(data)
        op = make_reduction_op(get_algorithm("ST"))
        vals = {comm.reduce_nondeterministic(chunks, op, jitter=0.6).value for _ in range(20)}
        assert len(vals) > 1

    def test_nondet_reduce_constant_for_pr(self):
        comm = SimComm(32, seed=7)
        data = zero_sum_series(32_000, seed=8)
        chunks = comm.scatter_array(data)
        op = make_reduction_op(get_algorithm("PR"))
        vals = {comm.reduce_nondeterministic(chunks, op, jitter=0.6).value for _ in range(10)}
        assert vals == {0.0}

    def test_same_seed_same_runs(self):
        data = zero_sum_series(8000, seed=9)
        results = []
        for _ in range(2):
            comm = SimComm(16, seed=10)
            chunks = comm.scatter_array(data)
            op = make_reduction_op(get_algorithm("ST"))
            results.append([comm.reduce_nondeterministic(chunks, op).value for _ in range(5)])
        assert results[0] == results[1]

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            sample_arrival_times(0)
        with pytest.raises(ValueError):
            sample_arrival_times(4, jitter=-1.0)


class TestFaults:
    def test_campaign_shapes_vary_more_with_faults(self):
        data = zero_sum_series(16_000, seed=11)
        comm = SimComm(32, seed=12)
        chunks = comm.scatter_array(data)
        op = make_reduction_op(get_algorithm("ST"))
        calm = run_campaign(comm, chunks, op, FaultModel(jitter=0.05, fault_prob=0.0), 25)
        stormy = run_campaign(
            comm, chunks, op, FaultModel(jitter=0.05, fault_prob=0.3, fault_delay=50.0), 25
        )
        assert np.ptp(stormy.depths) >= np.ptp(calm.depths)
        assert stormy.times.mean() > calm.times.mean()

    def test_pr_survives_any_weather(self):
        data = zero_sum_series(16_000, seed=13)
        comm = SimComm(32, seed=14)
        chunks = comm.scatter_array(data)
        op = make_reduction_op(get_algorithm("PR"))
        campaign = run_campaign(
            comm, chunks, op, FaultModel(jitter=1.0, fault_prob=0.5), 20
        )
        assert campaign.n_distinct_values == 1

    def test_fault_model_validation(self):
        with pytest.raises(ValueError):
            FaultModel(fault_prob=2.0)
        with pytest.raises(ValueError):
            FaultModel(jitter=-0.1)
        comm = SimComm(4)
        with pytest.raises(ValueError):
            run_campaign(comm, [np.ones(1)] * 4, make_reduction_op(get_algorithm("ST")), FaultModel(), 0)
