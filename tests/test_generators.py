"""Workload generators: dr exact, k within tolerance, structure guarantees."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import exact_sum_fraction
from repro.generators import (
    TABLE_I,
    chunk_for_rank,
    generate_sum_set,
    log_uniform_magnitudes,
    nbody_force_terms,
    signed_log_uniform,
    uniform_symmetric,
    zero_sum_series,
    zero_sum_set,
)
from repro.metrics import condition_number, dynamic_range


class TestConditionedSets:
    @pytest.mark.parametrize("k", [1.0, 10.0, 1e3, 1e6, 1e9, 1e12, 1e15, math.inf])
    @pytest.mark.parametrize("dr", [0, 8, 32])
    def test_targets_hit(self, k, dr):
        s = generate_sum_set(1000, k, dr, seed=99)
        assert s.values.size == 1000
        assert dynamic_range(s.values) == dr
        mk = condition_number(s.values)
        if math.isinf(k):
            assert math.isinf(mk)
        else:
            assert 0.5 < mk / k < 2.0

    @given(
        st.integers(min_value=8, max_value=500),
        st.sampled_from([1.0, 100.0, 1e8, math.inf]),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_n_and_dr(self, n, k, dr, seed):
        s = generate_sum_set(n, k, dr, seed=seed)
        assert s.values.size == n
        assert dynamic_range(s.values) == dr

    def test_base_exponent_shifts_scale(self):
        s = generate_sum_set(100, 1.0, 4, seed=1, base_exponent=-50)
        mags = np.abs(s.values)
        assert mags.max() < 2.0**-45
        assert mags.min() >= 2.0**-50

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_sum_set(7, 1.0, 0)
        with pytest.raises(ValueError):
            generate_sum_set(100, 0.5, 0)
        with pytest.raises(ValueError):
            generate_sum_set(100, 1.0, -1)

    def test_seeded_determinism(self):
        a = generate_sum_set(100, 1e6, 8, seed=5).values
        b = generate_sum_set(100, 1e6, 8, seed=5).values
        assert np.array_equal(a, b)


class TestZeroSumSets:
    @pytest.mark.parametrize("n", [2, 4, 5, 7, 100, 1001])
    def test_exact_zero(self, n):
        x = zero_sum_set(n, dr=8 if n > 2 else 0, seed=3)
        assert exact_sum_fraction(x) == 0
        assert x.size == n

    @pytest.mark.parametrize("dr", [0, 1, 16, 32, 53, 60])
    def test_dr_exact_even(self, dr):
        x = zero_sum_set(1000, dr, seed=4)
        assert dynamic_range(x) == dr

    @pytest.mark.parametrize("dr", [1, 16, 52, 60])
    def test_dr_exact_odd(self, dr):
        x = zero_sum_set(1001, dr, seed=5)
        assert exact_sum_fraction(x) == 0
        assert dynamic_range(x) == dr

    def test_odd_dr0_quintuple(self):
        x = zero_sum_set(7, 0, seed=6)
        assert exact_sum_fraction(x) == 0
        assert dynamic_range(x) == 0

    def test_impossible_combinations(self):
        with pytest.raises(ValueError):
            zero_sum_set(3, 0)  # no odd zero-sum dr=0 triple exists
        with pytest.raises(ValueError):
            zero_sum_set(2, 5)  # a single pair has dr 0
        with pytest.raises(ValueError):
            zero_sum_set(1, 0)


class TestSeries:
    def test_zero_sum_series_exact(self):
        for n in (2, 100, 999, 10_000):
            x = zero_sum_series(n, seed=1)
            assert x.size == n
            assert exact_sum_fraction(x) == 0

    def test_chunks_are_nonzero(self):
        x = zero_sum_series(10_000, seed=2)
        chunk = chunk_for_rank(x, 0, 8)
        assert float(np.sum(chunk)) != 0.0

    def test_chunking_covers_everything(self):
        x = zero_sum_series(1000, seed=3)
        parts = [chunk_for_rank(x, r, 7) for r in range(7)]
        assert sum(p.size for p in parts) == 1000
        assert np.array_equal(np.concatenate(parts), x)

    def test_chunk_bad_rank(self):
        x = zero_sum_series(10)
        with pytest.raises(ValueError):
            chunk_for_rank(x, 5, 5)

    def test_dynamic_range_parameter(self):
        x = zero_sum_series(10_000, dynamic_range=24, seed=4)
        assert dynamic_range(x) == 24


class TestDistributions:
    def test_uniform_symmetric_bounds(self):
        x = uniform_symmetric(10_000, 1000.0, seed=5)
        assert np.all(np.abs(x) < 1000.0)
        assert x.min() < 0 < x.max()

    def test_log_uniform_exponent_coverage(self):
        x = log_uniform_magnitudes(5000, -10, 10, seed=6)
        assert dynamic_range(x) == 20
        assert np.all(x > 0)

    def test_signed_log_uniform_has_both_signs(self):
        x = signed_log_uniform(1000, 0, 5, seed=7)
        assert (x > 0).any() and (x < 0).any()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            uniform_symmetric(-1)
        with pytest.raises(ValueError):
            uniform_symmetric(5, 0.0)
        with pytest.raises(ValueError):
            log_uniform_magnitudes(5, 3, 2)


class TestNBody:
    def test_force_terms_ill_conditioned(self):
        w = nbody_force_terms(2000, clustering=3.0, seed=8)
        assert w.terms.size == 1999
        k = condition_number(w.terms)
        dr = dynamic_range(w.terms)
        # the physics delivers what the paper promises: large k and dr
        assert k > 100
        assert dr > 10

    def test_clustering_widens_dynamic_range(self):
        tight = nbody_force_terms(500, clustering=0.1, seed=9)
        wide = nbody_force_terms(500, clustering=4.0, seed=9)
        assert dynamic_range(wide.terms) > dynamic_range(tight.terms)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            nbody_force_terms(1)
        with pytest.raises(ValueError):
            nbody_force_terms(10, axis=5)


class TestTableI:
    def test_eleven_rows(self):
        assert len(TABLE_I) == 11

    @pytest.mark.parametrize("sample", TABLE_I, ids=range(len(TABLE_I)))
    def test_k_labels_exact(self, sample):
        k = condition_number(sample.as_array())
        if math.isinf(sample.nominal_k):
            assert math.isinf(k)
        else:
            assert abs(k / sample.nominal_k - 1) < 0.05
