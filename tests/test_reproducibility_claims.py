"""The paper's headline claims, asserted as properties of the whole system.

These are the end-to-end invariants Sec. V establishes; each test names the
claim it pins.  They run on reduced-scale workloads but through exactly the
code paths the experiment harness uses.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import generate_sum_set, zero_sum_set
from repro.metrics import error_stats
from repro.summation import SumContext, get_algorithm
from repro.trees import evaluate_ensemble, evaluate_tree_generic, random_shape


class TestClaimTreeShapeMatters:
    """'Reduction tree shape has a large impact on reproducible numerical
    accuracy.'"""

    def test_unbalanced_worse_than_balanced_for_st(self):
        data = zero_sum_set(4096, dr=32, seed=1)
        bal = evaluate_ensemble(data, "balanced", get_algorithm("ST"), 50, seed=2)
        ser = evaluate_ensemble(data, "serial", get_algorithm("ST"), 50, seed=2)
        assert error_stats(ser, data).spread > error_stats(bal, data).spread

    def test_same_data_different_shapes_different_values(self):
        data = zero_sum_set(1024, dr=32, seed=3)
        alg = get_algorithm("ST")
        vals = {
            evaluate_tree_generic(random_shape(1024, seed=s), data, alg)
            for s in range(6)
        }
        assert len(vals) > 1


class TestClaimPropertiesMatter:
    """'Mathematical properties of a set of summands have an impact on the
    reproducibility of their sum.'"""

    def test_condition_number_drives_relative_variability(self):
        rels = []
        for k in (1e3, 1e9, 1e15):
            data = generate_sum_set(2048, k, 16, seed=4).values
            vals = evaluate_ensemble(data, "balanced", get_algorithm("ST"), 80, seed=5)
            rels.append(error_stats(vals, data).rel_std)
        assert rels[0] < rels[1] < rels[2]

    def test_well_conditioned_sums_stay_reproducible(self):
        data = generate_sum_set(2048, 1.0, 32, seed=6).values
        vals = evaluate_ensemble(data, "balanced", get_algorithm("ST"), 80, seed=7)
        assert error_stats(vals, data).rel_std < 50 * 2.0**-53


class TestClaimAlgorithmHierarchy:
    """'Only composite precision and prerounded summations offer reproducible
    numerical accuracy at an acceptable level.'"""

    @pytest.fixture(scope="class")
    def spreads(self):
        data = zero_sum_set(4096, dr=32, seed=8)
        out = {}
        for code in ("ST", "K", "CP", "PR"):
            vals = evaluate_ensemble(data, "serial", get_algorithm(code), 60, seed=9)
            out[code] = error_stats(vals, data)
        return out

    def test_ordering(self, spreads):
        assert spreads["ST"].spread >= spreads["K"].spread
        assert spreads["K"].spread >= spreads["CP"].spread
        assert spreads["CP"].spread >= spreads["PR"].spread

    def test_pr_bitwise(self, spreads):
        assert spreads["PR"].reproducible_bitwise
        assert spreads["PR"].spread == 0.0

    def test_cp_and_pr_effectively_identical(self, spreads):
        """Sec. V.C: 'the composite precision and prerounded summations
        performed identically for all sets of inputs considered.'"""
        assert spreads["CP"].spread <= 1e-12 * max(spreads["ST"].spread, 1e-300)


class TestClaimPRTotallyOrderFree:
    """PR: bitwise identical under any permutation, chunking, and tree."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_tree_and_permutation(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(16, 300))
        data = rng.uniform(-1, 1, n) * 2.0 ** rng.integers(-25, 26, n)
        alg = get_algorithm("PR")
        ctx = SumContext.for_data(data)
        ref = alg.sum_array(data, ctx)
        perm = rng.permutation(n)
        tree = random_shape(n, seed=seed + 1)
        assert evaluate_tree_generic(tree, data[perm], alg, ctx) == ref


class TestClaimBoundsUseless:
    """Sec. IV.A: worst-case bounds overestimate by orders of magnitude."""

    def test_bound_gap(self):
        from repro.metrics import analytical_bound

        rng = np.random.default_rng(10)
        data = rng.uniform(-1000, 1000, 4000)
        vals = evaluate_ensemble(data, "serial", get_algorithm("ST"), 100, seed=11)
        measured = error_stats(vals, data).max_abs
        assert analytical_bound(data) > 100 * measured


class TestClaimSelectionWorks:
    """Sec. V.D: profile-driven selection meets the tolerance it promises."""

    @pytest.mark.parametrize("k,threshold", [(1.0, 1e-10), (1e6, 1e-7), (1e12, 1e-2)])
    def test_chosen_algorithm_meets_tolerance(self, k, threshold):
        from repro.selection import AnalyticPolicy, profile_chunk

        data = generate_sum_set(2048, k, 16, seed=12).values
        policy = AnalyticPolicy()
        decision = policy.select(profile_chunk(data).as_set_profile(), threshold)
        vals = evaluate_ensemble(
            data, "balanced", get_algorithm(decision.code), 80, seed=13
        )
        assert error_stats(vals, data).rel_std <= threshold

    def test_selection_saves_cost_when_possible(self):
        """Easy data must not be forced onto expensive algorithms."""
        from repro.selection import AnalyticPolicy, profile_chunk

        data = generate_sum_set(2048, 1.0, 8, seed=14).values
        decision = AnalyticPolicy().select(
            profile_chunk(data).as_set_profile(), 1e-12
        )
        assert decision.code in ("ST", "K")
        assert decision.relative_cost < 4.0
